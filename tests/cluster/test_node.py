"""Tests for DataNode storage and repair-time computation."""

import numpy as np
import pytest

from repro.cluster.node import DataNode
from repro.ec import galois
from repro.ec.chunk import ChunkId
from repro.exceptions import ClusterError


def payload(seed, size=32):
    return np.random.default_rng(seed).integers(0, 256, size, dtype=np.uint8)


class TestStorage:
    def test_store_read(self):
        node = DataNode(3)
        cid = ChunkId(0, 1)
        node.store(cid, payload(1))
        np.testing.assert_array_equal(node.read(cid), payload(1))
        assert node.has(cid)
        assert node.chunk_count == 1

    def test_read_missing_raises(self):
        with pytest.raises(ClusterError):
            DataNode(0).read(ChunkId(0, 0))

    def test_chunk_ids_sorted(self):
        node = DataNode(0)
        node.store(ChunkId(1, 0), payload(1))
        node.store(ChunkId(0, 2), payload(2))
        node.store(ChunkId(0, 1), payload(3))
        assert node.chunk_ids() == [ChunkId(0, 1), ChunkId(0, 2), ChunkId(1, 0)]

    def test_repr(self):
        assert "up" in repr(DataNode(0))


class TestFailure:
    def test_fail_drops_data_and_blocks_access(self):
        node = DataNode(0)
        cid = ChunkId(0, 0)
        node.store(cid, payload(1))
        node.fail()
        assert not node.alive
        assert not node.has(cid)
        with pytest.raises(ClusterError):
            node.read(cid)
        with pytest.raises(ClusterError):
            node.store(cid, payload(1))

    def test_recover_comes_back_empty(self):
        node = DataNode(0)
        node.store(ChunkId(0, 0), payload(1))
        node.fail()
        node.recover()
        assert node.alive
        assert node.chunk_count == 0
        node.store(ChunkId(0, 0), payload(2))  # writable again


class TestPartialResult:
    def test_scales_own_chunk(self):
        node = DataNode(0)
        cid = ChunkId(0, 0)
        data = payload(5)
        node.store(cid, data)
        out = node.partial_result(cid, 3, [])
        np.testing.assert_array_equal(out, galois.gf_mul_slice(3, data))

    def test_xors_child_results(self):
        node = DataNode(0)
        cid = ChunkId(0, 0)
        data = payload(5)
        node.store(cid, data)
        child_a, child_b = payload(6), payload(7)
        out = node.partial_result(cid, 1, [child_a, child_b])
        np.testing.assert_array_equal(out, data ^ child_a ^ child_b)

    def test_size_mismatch_rejected(self):
        node = DataNode(0)
        cid = ChunkId(0, 0)
        node.store(cid, payload(5, size=32))
        with pytest.raises(ClusterError):
            node.partial_result(cid, 1, [payload(6, size=16)])
