"""Metrics registry unit tests."""

import json
import math

import pytest

from repro.obs import Histogram, MetricsRegistry
from repro.obs.metrics import DEFAULT_RESERVOIR_SIZE


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("flows_completed")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_same_name_returns_same_counter(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2

    def test_decrement_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("utilization")
        gauge.set(0.4)
        gauge.set(0.9)
        assert gauge.value == 0.9


class TestHistogram:
    def test_summary_percentiles(self):
        histogram = Histogram("task_seconds")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == 50.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0

    def test_empty_summary(self):
        assert Histogram("x").summary() == {"count": 0}
        assert math.isnan(Histogram("x").percentile(50))

    def test_percentile_bounds_checked(self):
        histogram = Histogram("x")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestRegistry:
    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("flows_completed").inc(2)
        registry.gauge("bottleneck_utilization").set(0.8)
        registry.histogram("task_seconds").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["flows_completed"] == 2
        assert snapshot["gauges"]["bottleneck_utilization"] == 0.8
        assert snapshot["histograms"]["task_seconds"]["count"] == 1

    def test_snapshot_folds_per_node_series(self):
        registry = MetricsRegistry()
        registry.counter("bytes_up/0").inc(100)
        registry.counter("bytes_up/3").inc(50)
        registry.counter("bytes_down/3").inc(75)
        snapshot = registry.snapshot()
        assert snapshot["per_bytes_up"] == {"0": 100, "3": 50}
        assert snapshot["per_bytes_down"] == {"3": 75}

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a/1").inc()
        registry.histogram("h").observe(2.0)
        json.dumps(registry.snapshot())


class TestHistogramReservoir:
    def test_exact_below_threshold(self):
        histogram = Histogram("h", reservoir_size=100)
        for i in range(100):
            histogram.observe(float(i))
        assert len(histogram.samples) == 100
        assert histogram.percentile(50) == 49.0

    def test_memory_bounded_past_threshold(self):
        histogram = Histogram("fg_read_latency", reservoir_size=64)
        for i in range(10_000):
            histogram.observe(float(i))
        assert len(histogram.samples) == 64
        assert histogram.count == 10_000
        # min/max/mean stay exact even once sampling kicks in.
        summary = histogram.summary()
        assert summary["min"] == 0.0
        assert summary["max"] == 9999.0
        assert summary["mean"] == pytest.approx(4999.5)

    def test_reservoir_is_name_seeded_deterministic(self):
        def fill(name):
            histogram = Histogram(name, reservoir_size=32)
            for i in range(5000):
                histogram.observe(float(i))
            return list(histogram.samples)

        assert fill("a") == fill("a")
        assert fill("a") != fill("b")

    def test_reservoir_percentiles_roughly_uniform(self):
        histogram = Histogram("h", reservoir_size=1024)
        for i in range(100_000):
            histogram.observe(i / 100_000)
        # A uniform reservoir over U[0,1): median near 0.5, p99 near 0.99.
        assert histogram.percentile(50) == pytest.approx(0.5, abs=0.05)
        assert histogram.percentile(99) == pytest.approx(0.99, abs=0.02)

    def test_reservoir_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir_size=0)

    def test_exactly_default_reservoir_size_stays_exact(self):
        # The 8192nd observation still fits: exact mode, no RNG yet.
        histogram = Histogram("h")
        for i in range(DEFAULT_RESERVOIR_SIZE):
            histogram.observe(float(i))
        assert len(histogram.samples) == DEFAULT_RESERVOIR_SIZE
        assert histogram._rng is None
        # Nearest-rank percentiles over 0..8191 are exact.
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(50) == 4095.0
        assert histogram.percentile(100) == 8191.0
        # One more observation tips into reservoir mode: the sample list
        # stays bounded while count/min/max/mean remain exact.
        histogram.observe(float(DEFAULT_RESERVOIR_SIZE))
        assert len(histogram.samples) == DEFAULT_RESERVOIR_SIZE
        assert histogram._rng is not None
        assert histogram.count == DEFAULT_RESERVOIR_SIZE + 1
        assert histogram.summary()["max"] == float(DEFAULT_RESERVOIR_SIZE)

    def test_empty_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("planner_seconds")  # created, never observed
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["planner_seconds"] == {"count": 0}
        assert math.isnan(
            registry.histogram("planner_seconds").percentile(50)
        )
        json.dumps(snapshot)  # an empty summary must stay serialisable

    def test_reservoir_reproducible_across_registries(self):
        def fill(registry):
            histogram = registry.histogram("task_seconds")
            for i in range(3 * DEFAULT_RESERVOIR_SIZE):
                histogram.observe(float(i % 977))
            return list(histogram.samples)

        first = fill(MetricsRegistry())
        second = fill(MetricsRegistry())
        # Same name => same crc32 seed => identical reservoir contents,
        # so two seeded runs snapshot identical percentiles.
        assert first == second

class TestLabeledFamilies:
    def test_unlabeled_snapshot_schema_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("flows").inc()
        snapshot = registry.snapshot()
        assert "families" not in snapshot
        assert snapshot["counters"] == {"flows": 1.0}

    def test_label_sets_are_distinct_children(self):
        registry = MetricsRegistry()
        registry.counter("repair_bytes", node=7, kind="hedge").inc(10)
        registry.counter("repair_bytes", node=7, kind="primary").inc(5)
        registry.counter("repair_bytes").inc(1)
        children = registry.series("repair_bytes")
        assert [child.labels for child in children] == [
            {}, {"kind": "hedge", "node": "7"},
            {"kind": "primary", "node": "7"},
        ]
        assert registry.family_type("repair_bytes") == "counter"

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc()
        registry.counter("x", b="2", a="1").inc()
        assert registry.counter("x", a="1", b="2").value == 2

    def test_family_type_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x", node=1)

    def test_snapshot_flat_keys_and_families_section(self):
        registry = MetricsRegistry()
        registry.counter("hedge_events", kind="cancel").inc(2)
        registry.gauge("cap", node=3).set(1.5)
        registry.histogram("lat", tenant="t0").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['hedge_events{kind="cancel"}'] == 2.0
        assert snapshot["gauges"]['cap{node="3"}'] == 1.5
        assert snapshot["histograms"]['lat{tenant="t0"}']["count"] == 1
        families = snapshot["families"]
        assert families["hedge_events"] == [
            {"labels": {"kind": "cancel"}, "value": 2.0}
        ]
        assert families["lat"][0]["summary"]["count"] == 1

    def test_labeled_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("x", tenant="a").inc()
        json.dumps(registry.snapshot())

    def test_per_node_folding_skips_labeled_keys(self):
        registry = MetricsRegistry()
        registry.counter("bytes_up/3", kind="hedge").inc(7)
        snapshot = registry.snapshot()
        # The rendered key contains a slash but is not a name/key metric,
        # so it must not be folded into a per_* map.
        assert "per_bytes_up" not in snapshot
