"""Matrix algebra over GF(2^w).

Provides the matrix operations Reed-Solomon coding needs: multiplication,
Gauss-Jordan inversion, and Vandermonde construction.  Matrices are plain
``numpy.ndarray`` of the field's word dtype; every function takes the
:class:`~repro.ec.field.GaloisField` to operate in (GF(2^8) by default).
"""

from __future__ import annotations

import numpy as np

from repro.ec.field import GF256, GaloisField
from repro.exceptions import SingularMatrixError


def gf_matmul(
    a: np.ndarray, b: np.ndarray, field: GaloisField = GF256
) -> np.ndarray:
    """Multiply two GF(2^w) matrices (or matrix x vector)."""
    a = np.atleast_2d(np.asarray(a, dtype=field.dtype))
    b_in = np.asarray(b, dtype=field.dtype)
    b2 = b_in.reshape(-1, 1) if b_in.ndim == 1 else b_in
    if a.shape[1] != b2.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} x {b2.shape}")
    out = np.zeros((a.shape[0], b2.shape[1]), dtype=field.dtype)
    # XOR-accumulate one rank-1 product per inner index; vectorised per row.
    for i in range(a.shape[1]):
        out ^= field.mul(a[:, i : i + 1], b2[i : i + 1, :])
    if b_in.ndim == 1:
        return out[:, 0]
    return out


def gf_identity(size: int, field: GaloisField = GF256) -> np.ndarray:
    """Identity matrix over GF(2^w)."""
    return np.eye(size, dtype=field.dtype)


def gf_inverse(
    matrix: np.ndarray, field: GaloisField = GF256
) -> np.ndarray:
    """Invert a square GF(2^w) matrix by Gauss-Jordan elimination.

    Raises:
        SingularMatrixError: if the matrix is not invertible.
    """
    matrix = np.asarray(matrix, dtype=field.dtype)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    size = matrix.shape[0]
    work = matrix.copy()
    inverse = gf_identity(size, field)
    for col in range(size):
        # Find a pivot row at or below the diagonal.
        pivot_rows = np.nonzero(work[col:, col])[0]
        if pivot_rows.size == 0:
            raise SingularMatrixError(f"matrix is singular at column {col}")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        # Normalise the pivot row.
        inv_pivot = field.inv(int(work[col, col]))
        work[col] = field.mul_slice(inv_pivot, work[col])
        inverse[col] = field.mul_slice(inv_pivot, inverse[col])
        # Eliminate the column from every other row.
        for row in range(size):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            work[row] ^= field.mul_slice(factor, work[col])
            inverse[row] ^= field.mul_slice(factor, inverse[col])
    return inverse


def vandermonde(
    rows: int, cols: int, field: GaloisField = GF256
) -> np.ndarray:
    """Vandermonde matrix V[i, j] = alpha_i^j with distinct alpha_i.

    The paper constructs RS encoding coefficients from the Vandermonde
    matrix (Section II-A); we use evaluation points 1..rows so every k x k
    row-submatrix is invertible (distinct evaluation points).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("vandermonde dimensions must be positive")
    if rows >= field.order:
        raise ValueError(
            f"too many rows for GF(2^{field.w}) evaluation points"
        )
    out = np.zeros((rows, cols), dtype=field.dtype)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = field.pow(i + 1, j)
    return out
