"""Unit helpers.

Internally the library uses **bytes** for sizes and **bytes/second** for
bandwidth.  The paper quotes Mb/s (megabits per second) and MiB/KiB sizes;
these helpers keep conversions explicit at API boundaries.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: One megabit per second, in bytes per second.
MBPS = 1_000_000 / 8

#: One gigabit per second, in bytes per second.
GBPS = 1_000_000_000 / 8


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * MBPS


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * GBPS


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes/second to megabits/second."""
    return bytes_per_second / MBPS


def mib(value: float) -> int:
    """Convert MiB to bytes."""
    return int(value * MIB)


def kib(value: float) -> int:
    """Convert KiB to bytes."""
    return int(value * KIB)
