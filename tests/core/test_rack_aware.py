"""Tests for rack-aware repair planning (§IV-F extension)."""

import pytest

from repro.core import PivotRepairPlanner
from repro.core.rack_aware import (
    RackAwarePivotPlanner,
    RackSnapshot,
    cross_rack_edges,
    flat_plan_rack_bmin,
    rack_bmin,
)
from repro.core.tree import RepairTree
from repro.exceptions import PlanningError
from repro.network.hierarchical import RackNetwork


def snapshot_2x4(node_cap=1000.0, rack_cap=1500.0):
    """2 racks x 4 nodes, homogeneous, oversubscribed core."""
    net = RackNetwork.uniform(2, 4, node_cap, rack_cap)
    return RackSnapshot.from_network(net, 0.0)


class TestRackSnapshot:
    def test_from_network(self):
        view = snapshot_2x4()
        assert view.rack_of[0] == 0
        assert view.rack_of[7] == 1
        assert view.rack_up[0] == 1500
        assert view.same_rack(0, 3)
        assert not view.same_rack(0, 4)

    def test_rack_of_must_cover_nodes(self):
        with pytest.raises(PlanningError):
            RackSnapshot(
                up={0: 1.0}, down={0: 1.0},
                rack_of={}, rack_up={}, rack_down={},
            )

    def test_missing_rack_link_rejected(self):
        with pytest.raises(PlanningError):
            RackSnapshot(
                up={0: 1.0}, down={0: 1.0},
                rack_of={0: 3}, rack_up={}, rack_down={},
            )


class TestRackBmin:
    def test_intra_rack_tree_equals_flat_bmin(self):
        view = snapshot_2x4(rack_cap=1.0)  # core nearly dead
        tree = RepairTree(0, {1: 0, 2: 1, 3: 1})  # all in rack 0
        assert cross_rack_edges(tree, view.rack_of) == []
        assert rack_bmin(tree, view) == tree.bmin(view)

    def test_cross_rack_edges_split_rack_links(self):
        view = snapshot_2x4(node_cap=1000, rack_cap=600)
        # Two rack-1 nodes upload straight to the rack-0 requestor.
        tree = RepairTree(0, {4: 0, 5: 0})
        edges = cross_rack_edges(tree, view.rack_of)
        assert len(edges) == 2
        # Rack 1's uplink and rack 0's downlink each carry two streams.
        assert rack_bmin(tree, view) == pytest.approx(300)

    def test_single_cross_edge_not_split(self):
        view = snapshot_2x4(node_cap=1000, rack_cap=600)
        # Rack-local aggregation: 5 -> 4 (local), 4 -> 0 (one cross edge).
        tree = RepairTree(0, {4: 0, 5: 4})
        assert rack_bmin(tree, view) == pytest.approx(600)


class TestRackAwarePlanner:
    def test_requires_rack_snapshot(self):
        from repro.core.bandwidth_view import BandwidthSnapshot

        flat = BandwidthSnapshot(
            up={i: 1.0 for i in range(6)}, down={i: 1.0 for i in range(6)}
        )
        with pytest.raises(PlanningError):
            RackAwarePivotPlanner().plan(flat, 0, [1, 2, 3, 4], 4)

    def test_at_most_one_cross_edge_per_rack(self):
        view = snapshot_2x4()
        plan = RackAwarePivotPlanner().plan(
            view, 0, [1, 2, 3, 4, 5, 6, 7], 6
        )
        crossings = cross_rack_edges(plan.tree, view.rack_of)
        remote_racks = {
            view.rack_of[h] for h in plan.helpers
        } - {view.rack_of[0]}
        # Each remote rack contributes exactly one rack-head upload.
        assert len(crossings) == len(remote_racks)
        assert {view.rack_of[c] for c, _ in crossings} == remote_racks

    def test_beats_flat_planner_under_oversubscription(self):
        # Strongly oversubscribed core: local aggregation wins clearly.
        view = snapshot_2x4(node_cap=1000, rack_cap=500)
        rack_plan = RackAwarePivotPlanner().plan(
            view, 0, [1, 2, 3, 4, 5, 6, 7], 6
        )
        _, flat_true_bmin = flat_plan_rack_bmin(
            PivotRepairPlanner(), view, 0, [1, 2, 3, 4, 5, 6, 7], 6
        )
        assert rack_plan.bmin >= flat_true_bmin

    def test_matches_flat_when_core_is_fat(self):
        # With a non-oversubscribed core, rack-awareness cannot be far off.
        view = snapshot_2x4(node_cap=1000, rack_cap=100_000)
        rack_plan = RackAwarePivotPlanner().plan(
            view, 0, [1, 2, 3, 4, 5, 6, 7], 6
        )
        flat_plan = PivotRepairPlanner().plan(
            view, 0, [1, 2, 3, 4, 5, 6, 7], 6
        )
        assert rack_plan.bmin >= 0.5 * flat_plan.bmin

    def test_all_helpers_planned(self):
        view = snapshot_2x4()
        plan = RackAwarePivotPlanner().plan(view, 0, [1, 2, 3, 4, 5, 6], 5)
        assert len(plan.helpers) == 5
        assert plan.scheme == "RackAwarePivotRepair"

    def test_requestor_rack_helpers_attach_locally(self):
        view = snapshot_2x4()
        plan = RackAwarePivotPlanner().plan(view, 0, [1, 2, 3], 3)
        # All helpers share the requestor's rack: no cross-rack edges.
        assert cross_rack_edges(plan.tree, view.rack_of) == []
