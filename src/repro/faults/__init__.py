"""Deterministic, seedable fault injection for the repair stack.

The pieces:

* :class:`FaultPlan` — a declarative schedule of node crashes, link
  degradation windows, helper stalls, and chunk-read errors, built from
  code, a compact spec string (``crash:3@5;stall:4@3+2``), a JSON file,
  or a seeded RNG.
* :class:`FaultyNetwork` — wraps any network model, scaling its link
  capacities by the plan at query time; the fluid simulator re-allocates
  rates exactly at fault boundaries.
* :class:`RetryPolicy` — detection timeout, retry budget, exponential
  backoff.
* :class:`FaultInjector` — turns plan events into ``fault.*`` trace
  events and counters as simulated time passes.
* :func:`run_chaos_single_chunk` — the chaos harness combining the
  fault-aware executor (timing) with byte-accurate cluster reconstruction
  (correctness).
"""

from repro.faults.injector import FaultInjector
from repro.faults.network import FaultyNetwork
from repro.faults.plan import (
    ChunkReadError,
    FaultEvent,
    FaultPlan,
    HelperStall,
    LinkDegradation,
    NodeCrash,
)
from repro.faults.policy import RetryPolicy


def __getattr__(name: str):
    # The chaos runner sits on top of the repair stack, which itself
    # imports this package — load it lazily to keep the import acyclic.
    if name in ("ChaosOutcome", "run_chaos_single_chunk"):
        from repro.faults import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ChaosOutcome",
    "ChunkReadError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyNetwork",
    "HelperStall",
    "LinkDegradation",
    "NodeCrash",
    "RetryPolicy",
    "run_chaos_single_chunk",
]
