"""Tests for the RP chain baseline."""

import numpy as np
import pytest

from repro.baselines.rp import RPPlanner
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.exceptions import PlanningError


def snap(up, down):
    return BandwidthSnapshot(up=up, down=down)


def uniform_snapshot(count, value=100.0):
    return snap({i: value for i in range(count)}, {i: value for i in range(count)})


class TestRP:
    def test_chain_shape(self):
        plan = RPPlanner().plan(uniform_snapshot(6), 0, [1, 2, 3, 4, 5], 4)
        tree = plan.tree
        assert tree.depth() == 4
        assert tree.parent(1) == 0
        assert tree.parent(2) == 1
        assert tree.parent(3) == 2
        assert tree.parent(4) == 3
        assert 5 not in tree

    def test_uses_first_k_candidates_in_order(self):
        plan = RPPlanner().plan(uniform_snapshot(6), 0, [5, 3, 1, 2, 4], 3)
        assert plan.tree.parent(5) == 0
        assert plan.tree.parent(3) == 5
        assert plan.tree.parent(1) == 3

    def test_bmin_is_slowest_stage(self):
        up = {0: 980, 1: 600, 2: 800, 3: 510, 4: 600}
        down = {0: 980, 1: 130, 2: 500, 3: 200, 4: 900}
        plan = RPPlanner().plan(snap(up, down), 0, [1, 2, 3, 4], 4)
        # Node 1 non-leaf: min(600, 130)=130 bottlenecks.
        assert plan.bmin == pytest.approx(130)

    def test_shuffle_is_deterministic_with_seed(self):
        view = uniform_snapshot(8)
        a = RPPlanner("shuffle", np.random.default_rng(5)).plan(
            view, 0, list(range(1, 8)), 4
        )
        b = RPPlanner("shuffle", np.random.default_rng(5)).plan(
            view, 0, list(range(1, 8)), 4
        )
        assert a.tree == b.tree

    def test_greedy_ablation_beats_given_order_on_average(self):
        # Greedy is myopic, so it can lose on individual instances; across
        # many random instances it must clearly beat the oblivious chain.
        given_total = greedy_total = 0.0
        for seed in range(50):
            local = np.random.default_rng(seed)
            up = {i: float(local.integers(10, 1000)) for i in range(7)}
            down = {i: float(local.integers(10, 1000)) for i in range(7)}
            view = snap(up, down)
            given_total += RPPlanner().plan(view, 0, list(range(1, 7)), 4).bmin
            greedy_total += (
                RPPlanner("greedy").plan(view, 0, list(range(1, 7)), 4).bmin
            )
        assert greedy_total > given_total

    def test_unknown_order_rejected(self):
        with pytest.raises(PlanningError):
            RPPlanner("alphabetical")

    def test_plan_is_pipelined(self):
        plan = RPPlanner().plan(uniform_snapshot(6), 0, [1, 2, 3, 4], 4)
        assert plan.is_pipelined
        assert plan.stages is None
