"""Self-contained HTML run report (``repro report --html``).

Renders one run's observability artefacts — trace events, flight-recorder
samples, and a :class:`~repro.obs.analysis.RunDiagnosis` — into a single
HTML file with **zero external dependencies**: all styling is inline CSS
and every chart is hand-built inline SVG, so the file opens offline and
survives being attached to a ticket.

Three panels:

* **utilization heatmap** — links (node x direction) on the y axis,
  sample time on the x axis, cell colour from cool (idle) to hot
  (saturated);
* **repair waterfall** — one bar per diagnosed repair, segmented by
  attributed cause (ideal / contention / governor / stall);
* **governor timeline** — the repair rate cap as a step function over
  the run, with uncapped intervals left blank.

Everything here is deterministic: element order follows sorted node ids
and event order, and floats are formatted with fixed precision, so two
same-seed runs produce byte-identical reports.
"""

from __future__ import annotations

import html
from collections.abc import Sequence

from repro.obs.analysis import RunDiagnosis
from repro.units import to_mbps

__all__ = ["render_html_report"]

#: Waterfall segment colours by attribution component.
_COMPONENT_COLOURS = (
    ("ideal", "#4c9f70"),
    ("contention", "#e0a83c"),
    ("governor", "#7d6fb3"),
    ("stall", "#c0504d"),
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: right; }
th { background: #f0f0f0; }
td.label, th.label { text-align: left; }
.anomaly { color: #b00020; font-weight: 600; }
.ok { color: #2e7d32; }
.legend span { display: inline-block; margin-right: 1rem; }
.legend i { display: inline-block; width: 0.8rem; height: 0.8rem;
            margin-right: 0.3rem; vertical-align: middle; }
svg text { font-family: inherit; }
.meta { color: #666; font-size: 0.8rem; }
"""


def _fmt(value: float) -> str:
    """Fixed-precision float for deterministic SVG geometry."""
    return f"{value:.2f}"


def _heat_colour(util: float) -> str:
    """Idle-to-saturated colour ramp (light grey -> amber -> red)."""
    u = min(max(util, 0.0), 1.0)
    if u < 0.5:
        # grey (0xee) -> amber
        f = u / 0.5
        r = int(0xEE + (0xE0 - 0xEE) * f)
        g = int(0xEE + (0xA8 - 0xEE) * f)
        b = int(0xEE + (0x3C - 0xEE) * f)
    else:
        f = (u - 0.5) / 0.5
        r = int(0xE0 + (0xC0 - 0xE0) * f)
        g = int(0xA8 + (0x30 - 0xA8) * f)
        b = int(0x3C + (0x30 - 0x3C) * f)
    return f"#{r:02x}{g:02x}{b:02x}"


#: Heatmap column budget: long runs are bucketed (max util per bucket)
#: so the report stays small no matter how many samples were recorded.
_HEATMAP_COLUMNS = 160


def _utilization_heatmap(samples: Sequence) -> str:
    """Links x time heatmap from flight-recorder samples (inline SVG)."""
    if not samples:
        return "<p class='meta'>no flight-recorder samples in this run</p>"
    links: set[tuple[str, int]] = set()
    for sample in samples:
        links.update(("up", node) for node in sample.up_util)
        links.update(("down", node) for node in sample.down_util)
    if not links:
        return "<p class='meta'>samples carry no per-link utilization</p>"
    rows = sorted(links, key=lambda key: (key[1], key[0]))
    columns = min(len(samples), _HEATMAP_COLUMNS)
    per_bucket = len(samples) / columns

    def bucket_util(direction: str, node: int, col: int) -> float:
        lo = int(col * per_bucket)
        hi = max(int((col + 1) * per_bucket), lo + 1)
        best = 0.0
        for sample in samples[lo:hi]:
            series = (
                sample.up_util if direction == "up" else sample.down_util
            )
            util = series.get(node, 0.0)
            if util != util or util == float("inf"):
                util = 1.0
            best = max(best, util)
        return best

    cell_w, cell_h, label_w, top = 8, 14, 70, 18
    width = label_w + cell_w * columns + 10
    height = top + cell_h * len(rows) + 24
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' "
        f"height='{height}' role='img'>"
    ]
    for row_index, (direction, node) in enumerate(rows):
        y = top + row_index * cell_h
        parts.append(
            f"<text x='{label_w - 6}' y='{y + cell_h - 3}' "
            f"text-anchor='end' font-size='10'>N{node} {direction}</text>"
        )
        for col in range(columns):
            util = bucket_util(direction, node, col)
            t = samples[int(col * per_bucket)].t
            parts.append(
                f"<rect x='{label_w + col * cell_w}' y='{y}' "
                f"width='{cell_w}' height='{cell_h - 1}' "
                f"fill='{_heat_colour(util)}'>"
                f"<title>N{node} {direction} @ {_fmt(t)}s: "
                f"{_fmt(util * 100)}%</title></rect>"
            )
    t0, t1 = samples[0].t, samples[-1].t
    axis_y = top + len(rows) * cell_h + 12
    parts.append(
        f"<text x='{label_w}' y='{axis_y}' font-size='10'>{_fmt(t0)}s</text>"
        f"<text x='{label_w + cell_w * columns}' y='{axis_y}' "
        f"text-anchor='end' font-size='10'>{_fmt(t1)}s</text>"
    )
    parts.append("</svg>")
    if len(samples) > columns:
        parts.append(
            f"<p class='meta'>{len(samples)} samples bucketed into "
            f"{columns} columns (peak utilization per bucket)</p>"
        )
    return "".join(parts)


def _repair_waterfall(diagnosis: RunDiagnosis) -> str:
    """Per-repair stacked bar of attributed seconds (inline SVG)."""
    repairs = [d for d in diagnosis.repairs if d.duration > 0]
    if not repairs:
        return "<p class='meta'>no finished repair flows to attribute</p>"
    longest = max(d.duration for d in repairs)
    bar_h, gap, label_w, bar_w, top = 16, 6, 150, 600, 6
    height = top + len(repairs) * (bar_h + gap) + 20
    width = label_w + bar_w + 90
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' "
        f"height='{height}' role='img'>"
    ]
    for index, diag in enumerate(repairs):
        y = top + index * (bar_h + gap)
        label = html.escape(diag.label[:22])
        parts.append(
            f"<text x='{label_w - 6}' y='{y + bar_h - 4}' "
            f"text-anchor='end' font-size='10'>{label}</text>"
        )
        x = float(label_w)
        components = diag.components or {"ideal": diag.duration}
        for key, colour in _COMPONENT_COLOURS:
            seconds = max(components.get(key, 0.0), 0.0)
            if seconds <= 0:
                continue
            w = bar_w * seconds / longest
            parts.append(
                f"<rect x='{_fmt(x)}' y='{y}' width='{_fmt(w)}' "
                f"height='{bar_h}' fill='{colour}'>"
                f"<title>{key}: {_fmt(seconds)}s</title></rect>"
            )
            x += w
        parts.append(
            f"<text x='{_fmt(x + 5)}' y='{y + bar_h - 4}' "
            f"font-size='10'>{_fmt(diag.duration)}s</text>"
        )
    parts.append("</svg>")
    legend = "".join(
        f"<span><i style='background:{colour}'></i>{key}</span>"
        for key, colour in _COMPONENT_COLOURS
    )
    return f"<div class='legend'>{legend}</div>" + "".join(parts)


def _governor_timeline(samples: Sequence, diagnosis: RunDiagnosis) -> str:
    """Repair cap step function over the run (inline SVG)."""
    points: list[tuple[float, float | None]] = []
    previous: object = object()
    for sample in samples:
        if sample.repair_cap != previous:
            points.append((sample.t, sample.repair_cap))
            previous = sample.repair_cap
    if not points and not diagnosis.governor:
        return "<p class='meta'>no governor activity recorded</p>"
    if not points:
        return (
            "<p class='meta'>governor made "
            f"{diagnosis.governor.get('decisions', 0)} decisions "
            "(enable the flight recorder for the cap timeline)</p>"
        )
    t0 = points[0][0]
    t1 = samples[-1].t if samples else points[-1][0]
    span = (t1 - t0) or 1.0
    caps = [cap for _, cap in points if cap is not None]
    peak = max(caps) if caps else 1.0
    width, height, label_w, top = 620, 120, 60, 10
    plot_w, plot_h = width - label_w - 10, height - top - 24

    def x_of(t: float) -> float:
        return label_w + plot_w * (t - t0) / span

    def y_of(cap: float | None) -> float:
        if cap is None:
            return float(top)  # uncapped drawn at the top edge, dashed
        return top + plot_h * (1 - min(cap / peak, 1.0) if peak else 1)

    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' "
        f"height='{height}' role='img'>",
        f"<line x1='{label_w}' y1='{top + plot_h}' x2='{width - 10}' "
        f"y2='{top + plot_h}' stroke='#999'/>",
        f"<text x='{label_w - 4}' y='{top + 8}' text-anchor='end' "
        f"font-size='10'>{_fmt(to_mbps(peak))} Mb/s</text>",
        f"<text x='{label_w - 4}' y='{top + plot_h}' text-anchor='end' "
        f"font-size='10'>0</text>",
    ]
    extended = points + [(t1, points[-1][1])]
    for (t, cap), (t_next, _) in zip(extended, extended[1:]):
        x1, x2 = x_of(t), x_of(max(t_next, t))
        y = y_of(cap)
        dash = " stroke-dasharray='4 3'" if cap is None else ""
        title = (
            "uncapped" if cap is None else f"{_fmt(to_mbps(cap))} Mb/s"
        )
        parts.append(
            f"<line x1='{_fmt(x1)}' y1='{_fmt(y)}' x2='{_fmt(x2)}' "
            f"y2='{_fmt(y)}' stroke='#7d6fb3' stroke-width='2'{dash}>"
            f"<title>{title} from {_fmt(t)}s</title></line>"
        )
    parts.append(
        f"<text x='{label_w}' y='{height - 6}' font-size='10'>"
        f"{_fmt(t0)}s</text>"
        f"<text x='{width - 10}' y='{height - 6}' text-anchor='end' "
        f"font-size='10'>{_fmt(t1)}s</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _summary_table(diagnosis: RunDiagnosis) -> str:
    rows = []
    for diag in diagnosis.repairs:
        ratio = diag.achieved_over_oracle
        if ratio is None:
            ratio = diag.achieved_over_claimed
        neck = "-" if diag.bottleneck is None else html.escape(
            diag.bottleneck.describe()
        )
        rows.append(
            "<tr>"
            f"<td class='label'>{html.escape(diag.label)}</td>"
            f"<td>{_fmt(diag.duration)}</td>"
            f"<td>{_fmt(to_mbps(diag.achieved_rate))}</td>"
            f"<td>{'-' if ratio is None else _fmt(ratio)}</td>"
            f"<td class='label'>{neck}</td>"
            "</tr>"
        )
    if not rows:
        return "<p class='meta'>no repairs diagnosed</p>"
    return (
        "<table><tr><th class='label'>repair</th><th>duration (s)</th>"
        "<th>rate (Mb/s)</th><th>vs B_min</th>"
        "<th class='label'>bottleneck</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def render_html_report(
    diagnosis: RunDiagnosis,
    samples: Sequence = (),
    title: str = "repro run report",
) -> str:
    """One self-contained HTML page for a diagnosed run."""
    samples = list(samples)
    anomalies = (
        "<p class='ok'>no invariant violations</p>"
        if not diagnosis.anomalies
        else "<ul>"
        + "".join(
            f"<li class='anomaly'>{html.escape(issue)}</li>"
            for issue in diagnosis.anomalies
        )
        + "</ul>"
    )
    top = diagnosis.top_bottleneck
    headline = (
        "no bottleneck identified"
        if top is None
        else f"bottleneck: {html.escape(top.describe())}"
    )
    ratio = diagnosis.achieved_over_oracle
    if ratio is not None:
        headline += f" &middot; achieved/oracle B_min {_fmt(ratio)}"
    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>{html.escape(title)}</h1>
<p>{headline}</p>
<h2>Repairs</h2>
{_summary_table(diagnosis)}
<h2>Attribution waterfall</h2>
{_repair_waterfall(diagnosis)}
<h2>Link utilization</h2>
{_utilization_heatmap(samples)}
<h2>Governor timeline</h2>
{_governor_timeline(samples, diagnosis)}
<h2>Invariants</h2>
{anomalies}
<p class="meta">generated by repro report; all panels inline SVG,
no external assets.</p>
</body></html>
"""
