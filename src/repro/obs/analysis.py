"""Bottleneck attribution: decompose where a repair's wall time went.

The paper's central claim is about *where time goes*: the pivot tree
maximises the bottleneck bandwidth ``B_min``, and the scheduler keeps
full-node repair off congested links.  This module answers the question a
reader asks of any run — *which link bottlenecked this repair, and how
far from the oracle-optimal* ``B_min`` *did we land?* — mechanically,
from the artefacts a run already produces:

* the tracer's event stream (flow spans with edges and byte counts,
  ``flow.rate_change`` rate profiles, ``governor.decision`` caps, fault
  and retry instants);
* optionally the flight recorder's samples
  (:mod:`repro.obs.sampler`) for per-link utilization;
* optionally the network itself, to recompute an **oracle** ``B_min``:
  the executed tree's bottleneck bandwidth under the recorded bandwidth
  functions at submit time, with no competing traffic — the best the
  pipeline could have done on that tree.

Each repair flow's duration ``D`` with per-edge bytes ``B`` decomposes
exactly (``D = ideal + contention + governor + stall + credit``) by
integrating the piecewise-constant rate profile ``r(t)`` against the
reference rate ``ref`` (oracle ``B_min`` when available, else the
planner's claimed value)::

    ideal      = B / ref                 (time at the reference rate)
    stall      = sum of dt where r ~ 0   (faults, retries, collapsed links)
    governor   = sum of (ref - r) dt / ref  where r sits at the QoS cap
    contention = sum of (ref - r) dt / ref  for the other r < ref time
    credit     = sum of (ref - r) dt / ref  where r > ref (negative:
                 capacities rose after planning)

The identity holds because ``integral of r dt = B``.  Hedged repairs
(:mod:`repro.resilience`) add a ``hedge`` component: a hedge flow's whole
duration is hedge time, and a straggler-cancelled primary charges its
post-verdict deficit to ``stall`` (detector window) and ``hedge`` (racing
window) instead of ``contention``, with ``ideal`` measured against the
bytes it actually carried so the identity survives cancellation.

Invariant checks
flag anomalies instead of silently mis-attributing: an achieved rate
above the claimed ``B_min`` (a pipelined tree cannot beat its planned
bottleneck unless capacities moved), byte-conservation violations in the
telemetry, and sampler ring overflow.
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from dataclasses import dataclass, field

# NOTE: repro.core imports repro.obs.tracer at module load; the oracle
# helpers import the tree machinery lazily to keep repro.obs importable
# on its own (no package-level cycle).

__all__ = [
    "BottleneckLink",
    "RepairDiagnosis",
    "RunDiagnosis",
    "diagnose",
]

#: Rates below this fraction of the reference count as a stall.
_STALL_EPS = 1e-9

#: A rate within this relative tolerance of the active cap is "at cap".
_CAP_TOL = 0.02

#: Achieved/claimed ratios above this are flagged as anomalous.
_EXCEED_TOL = 1.01

#: A sampled link above this utilization counts as saturated.
SATURATION = 0.95


@dataclass(frozen=True)
class BottleneckLink:
    """The link a repair spent the most constrained time on."""

    node: int
    direction: str  # "up" | "down"
    #: Mean utilization of the link while it was the binding constraint
    #: (None when no samples covered the flow).
    utilization: float | None
    #: Fraction of the repair's duration this link was the tightest.
    share: float

    def describe(self) -> str:
        name = "uplink" if self.direction == "up" else "downlink"
        util = (
            "" if self.utilization is None
            else f", util {self.utilization:.2f}"
        )
        return f"node {self.node} {name} ({self.share:.0%} of time{util})"

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "direction": self.direction,
            "utilization": self.utilization,
            "share": self.share,
        }


@dataclass
class RepairDiagnosis:
    """Attribution of one repair flow's wall time."""

    label: str
    track: str
    submit: float
    finish: float
    shape: str
    cancelled: bool
    edges: list[tuple[int, int]]
    bytes_per_edge: float
    achieved_rate: float
    claimed_bmin: float | None = None
    oracle_bmin: float | None = None
    #: Which B_min the decomposition is measured against.
    reference: str = "none"  # "oracle" | "claimed" | "none"
    #: Seconds per cause; keys ideal/contention/governor/stall/credit.
    components: dict[str, float] = field(default_factory=dict)
    bottleneck: BottleneckLink | None = None
    anomalies: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finish - self.submit

    @property
    def achieved_over_oracle(self) -> float | None:
        if self.oracle_bmin and self.oracle_bmin > 0:
            return self.achieved_rate / self.oracle_bmin
        return None

    @property
    def achieved_over_claimed(self) -> float | None:
        if self.claimed_bmin and self.claimed_bmin > 0:
            return self.achieved_rate / self.claimed_bmin
        return None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "track": self.track,
            "submit": self.submit,
            "finish": self.finish,
            "duration": self.duration,
            "shape": self.shape,
            "cancelled": self.cancelled,
            "edges": [list(edge) for edge in self.edges],
            "bytes_per_edge": self.bytes_per_edge,
            "achieved_rate": self.achieved_rate,
            "claimed_bmin": self.claimed_bmin,
            "oracle_bmin": self.oracle_bmin,
            "achieved_over_oracle": self.achieved_over_oracle,
            "achieved_over_claimed": self.achieved_over_claimed,
            "reference": self.reference,
            "components": {
                key: self.components[key] for key in sorted(self.components)
            },
            "bottleneck": (
                None if self.bottleneck is None else self.bottleneck.to_dict()
            ),
            "anomalies": list(self.anomalies),
        }


@dataclass
class RunDiagnosis:
    """Whole-run attribution: per-repair diagnoses plus aggregates."""

    repairs: list[RepairDiagnosis]
    #: Total attributed seconds per cause, summed over repairs.
    totals: dict[str, float]
    #: (direction, node) -> seconds it was some repair's bottleneck.
    bottleneck_seconds: dict[tuple[str, int], float]
    #: Duration-weighted mean achieved/oracle ratio (None without oracle).
    achieved_over_oracle: float | None
    achieved_over_claimed: float | None
    #: Run-level invariant violations.
    anomalies: list[str] = field(default_factory=list)
    #: Governor activity: decisions seen and capped repair-time fraction.
    governor: dict = field(default_factory=dict)
    #: Fault instants observed in the trace, by event name.
    faults: dict[str, int] = field(default_factory=dict)

    @property
    def top_bottleneck(self) -> BottleneckLink | None:
        """The link that bottlenecked the most repair time, run-wide."""
        if not self.bottleneck_seconds:
            return None
        (direction, node), seconds = max(
            self.bottleneck_seconds.items(),
            key=lambda kv: (kv[1], -kv[0][1]),
        )
        total = sum(d.duration for d in self.repairs) or 1.0
        utils = [
            d.bottleneck.utilization
            for d in self.repairs
            if d.bottleneck is not None
            and (d.bottleneck.direction, d.bottleneck.node)
            == (direction, node)
            and d.bottleneck.utilization is not None
        ]
        return BottleneckLink(
            node=node,
            direction=direction,
            utilization=sum(utils) / len(utils) if utils else None,
            share=seconds / total,
        )

    def to_dict(self) -> dict:
        top = self.top_bottleneck
        return {
            "repairs": [d.to_dict() for d in self.repairs],
            "totals": {k: self.totals[k] for k in sorted(self.totals)},
            "bottleneck_ranking": [
                {"node": node, "direction": direction, "seconds": seconds}
                for (direction, node), seconds in sorted(
                    self.bottleneck_seconds.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
            ],
            "top_bottleneck": None if top is None else top.to_dict(),
            "achieved_over_oracle": self.achieved_over_oracle,
            "achieved_over_claimed": self.achieved_over_claimed,
            "governor": dict(self.governor),
            "faults": {k: self.faults[k] for k in sorted(self.faults)},
            "anomalies": list(self.anomalies),
        }

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, compact separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    # ------------------------------------------------------------------
    # Human-readable rendering ("repro explain")
    # ------------------------------------------------------------------
    def render(self, limit: int = 12) -> str:
        from repro.reporting import format_seconds, format_table
        from repro.units import to_mbps

        lines = []
        n = len(self.repairs)
        total = sum(d.duration for d in self.repairs)
        lines.append(
            f"diagnosed {n} repair flow(s), "
            f"{format_seconds(total)} total transfer time"
        )
        top = self.top_bottleneck
        if top is not None:
            lines.append(f"bottleneck: {top.describe()}")
        if self.achieved_over_oracle is not None:
            lines.append(
                f"achieved/oracle B_min: {self.achieved_over_oracle:.2f}"
            )
        if self.achieved_over_claimed is not None:
            lines.append(
                f"achieved/claimed B_min: {self.achieved_over_claimed:.2f}"
            )
        if self.totals:
            parts = "  ".join(
                f"{key} {format_seconds(self.totals[key])}"
                for key in ("ideal", "contention", "governor", "stall",
                            "hedge")
                if key in self.totals
            )
            credit = self.totals.get("credit", 0.0)
            if credit < -1e-9:
                parts += f"  credit {format_seconds(-credit)}"
            lines.append(f"time attribution: {parts}")
        if self.governor:
            lines.append(
                "governor: "
                f"{self.governor.get('decisions', 0)} decisions, "
                f"capped {self.governor.get('capped_fraction', 0.0):.0%} "
                "of repair time"
            )
        if self.faults:
            fired = ", ".join(
                f"{name} x{count}" for name, count in sorted(
                    self.faults.items()
                )
            )
            lines.append(f"faults observed: {fired}")
        rows = []
        for diag in self.repairs[:limit]:
            ratio = diag.achieved_over_oracle
            if ratio is None:
                ratio = diag.achieved_over_claimed
            neck = (
                "-" if diag.bottleneck is None
                else f"N{diag.bottleneck.node}:{diag.bottleneck.direction}"
            )
            rows.append(
                (
                    diag.label,
                    format_seconds(diag.duration),
                    f"{to_mbps(diag.achieved_rate):.0f} Mb/s",
                    "-" if ratio is None else f"{ratio:.2f}",
                    neck,
                    _waterfall(diag),
                )
            )
        if rows:
            lines.append(
                format_table(
                    ["repair", "duration", "rate", "vs B_min", "neck",
                     "waterfall ideal/contention/governor/stall/hedge"],
                    rows,
                )
            )
        if len(self.repairs) > limit:
            lines.append(f"... and {len(self.repairs) - limit} more")
        if self.anomalies:
            lines.append("ANOMALIES:")
            lines.extend(f"  ! {issue}" for issue in self.anomalies)
        else:
            lines.append("anomalies: none")
        return "\n".join(lines)


def _waterfall(diag: RepairDiagnosis, width: int = 20) -> str:
    """Tiny inline stacked bar of a diagnosis' time components."""
    glyphs = (("ideal", "#"), ("contention", "~"), ("governor", "g"),
              ("stall", "."), ("hedge", "h"))
    duration = diag.duration
    if duration <= 0:
        return ""
    out = []
    for key, glyph in glyphs:
        seconds = max(diag.components.get(key, 0.0), 0.0)
        out.append(glyph * round(width * seconds / duration))
    return "".join(out)[:width] or "#"


# ----------------------------------------------------------------------
# Trace digestion
# ----------------------------------------------------------------------
@dataclass
class _Flow:
    key: object  # task id, or (track, label) for legacy traces
    label: str
    track: str
    submit: float
    kind: str
    shape: str
    edges: list[tuple[int, int]]
    bytes_total: float
    finish: float | None = None
    cancelled: bool = False
    #: (t, aggregate rate) change points.
    rates: list[tuple[float, float]] = field(default_factory=list)


def _flow_key(event) -> object:
    task = event.fields.get("task")
    if task is not None:
        return task
    return (event.track, event.fields.get("label", ""))


def _digest_flows(events) -> list[_Flow]:
    """Pair flow spans with their rate-change points, in submit order."""
    open_flows: dict[object, _Flow] = {}
    flows: list[_Flow] = []
    for event in events:
        if event.name == "flow" and event.kind == "begin":
            flow = _Flow(
                key=_flow_key(event),
                label=event.fields.get("label", ""),
                track=event.track,
                submit=event.t,
                kind=event.fields.get("kind", "repair"),
                shape=event.fields.get("shape", "pipelined"),
                edges=[
                    (int(src), int(dst))
                    for src, dst in event.fields.get("edges", [])
                ],
                bytes_total=float(event.fields.get("bytes_total", 0.0)),
            )
            open_flows[flow.key] = flow
            flows.append(flow)
        elif event.name == "flow.rate_change":
            flow = open_flows.get(_flow_key(event))
            if flow is not None:
                flow.rates.append((event.t, float(event.fields["rate"])))
        elif (
            event.name in ("flow.finish", "flow.cancel")
            or (event.name == "flow" and event.kind == "end")
        ):
            # Completion rides on the span end event ("flow.finish" is
            # the legacy instant, still honoured for saved traces); the
            # cancel instant precedes its span end, so the later end
            # pops nothing and cannot clobber the cancelled flag.
            flow = open_flows.pop(_flow_key(event), None)
            if flow is not None:
                flow.finish = event.t
                flow.cancelled = event.name == "flow.cancel" or bool(
                    event.fields.get("cancelled", False)
                )
    return flows


def _straggler_windows(events) -> dict[object, dict]:
    """task id -> straggler verdict/hedge-launch times from the trace.

    ``since`` is when the detector's first bad progress window opened;
    ``launch`` (optional — launching can fail for lack of alternates) is
    when the hedge started racing the flagged primary.
    """
    windows: dict[object, dict] = {}
    for event in events:
        task = event.fields.get("task")
        if task is None:
            continue
        if event.name == "health.straggler":
            windows.setdefault(task, {})["since"] = float(
                event.fields.get("since", event.t)
            )
        elif event.name == "hedge.launch":
            windows.setdefault(task, {})["launch"] = event.t
    return {
        task: info for task, info in windows.items() if "since" in info
    }


def _claimed_bmins(events) -> list[tuple[float, int, float, str]]:
    """(t, requestor, bmin, scheme) of every ``planner.plan`` event."""
    out = []
    for event in events:
        if event.name == "planner.plan":
            out.append(
                (
                    event.t,
                    int(event.fields.get("requestor", -1)),
                    float(event.fields.get("bmin", 0.0)),
                    str(event.fields.get("scheme", "")),
                )
            )
    return out


def _cap_timeline(events, samples) -> list[tuple[float, float | None]]:
    """Governor cap step function from decisions (falling back to samples)."""
    points: list[tuple[float, float | None]] = []
    for event in events:
        if event.name == "governor.decision":
            cap = event.fields.get("cap", -1.0)
            points.append((event.t, None if cap is None or cap < 0 else cap))
    if not points and samples:
        previous: float | None = None
        for sample in samples:
            if sample.repair_cap != previous:
                points.append((sample.t, sample.repair_cap))
                previous = sample.repair_cap
    return points


def _cap_at(timeline, t: float) -> float | None:
    cap = None
    for at, value in timeline:
        if at > t + 1e-12:
            break
        cap = value
    return cap


def _sink_of(flow: _Flow) -> int | None:
    sources = {src for src, _ in flow.edges}
    sinks = {dst for _, dst in flow.edges if dst not in sources}
    return min(sinks) if sinks else None


def _rate_profile(flow: _Flow) -> list[tuple[float, float, float]]:
    """Piecewise-constant (start, end, rate) intervals covering the flow."""
    finish = flow.finish if flow.finish is not None else flow.submit
    if finish <= flow.submit:
        return []
    # Stable, time-only sort: several changes can land at the same
    # instant (resubmission churn) and the last one is the rate that
    # actually held.
    changes = sorted(flow.rates, key=lambda change: change[0])
    intervals = []
    cursor = flow.submit
    current = 0.0
    if changes and changes[0][0] <= flow.submit + 1e-12:
        current = changes[0][1]
        changes = changes[1:]
    for t, rate in changes:
        t = min(max(t, flow.submit), finish)
        if t > cursor:
            intervals.append((cursor, t, current))
            cursor = t
        current = rate
    if finish > cursor:
        intervals.append((cursor, finish, current))
    return intervals


def _split_at(start: float, end: float, cuts) -> list[tuple[float, float]]:
    """Split [start, end) at every cut point falling strictly inside."""
    points = [start]
    for cut in sorted(cuts):
        if start < cut < end:
            points.append(cut)
    points.append(end)
    return list(zip(points, points[1:]))


def _oracle_bmin(flow: _Flow, network) -> float | None:
    """Executed tree's B_min under the recorded bandwidths at submit.

    The oracle is contention-free: what the pipelined tree could carry if
    repair were alone on the network the instant it started.  ``None``
    for non-tree shapes or when the edges do not form a tree.
    """
    if network is None or flow.shape != "pipelined" or not flow.edges:
        return None
    from repro.core.bandwidth_view import BandwidthSnapshot
    from repro.core.tree import RepairTree
    from repro.exceptions import PlanningError

    root = _sink_of(flow)
    if root is None:
        return None
    try:
        tree = RepairTree(root, dict(flow.edges))
        snapshot = BandwidthSnapshot.from_network(network, flow.submit)
        return tree.bmin(snapshot)
    except PlanningError:
        return None


def _static_bottleneck(flow: _Flow, network) -> BottleneckLink | None:
    """Fallback bottleneck naming from the tree shape at submit time."""
    if network is None or flow.shape != "pipelined" or not flow.edges:
        return None
    from repro.core.bandwidth_view import BandwidthSnapshot
    from repro.core.tree import RepairTree
    from repro.exceptions import PlanningError

    root = _sink_of(flow)
    if root is None:
        return None
    try:
        tree = RepairTree(root, dict(flow.edges))
        snapshot = BandwidthSnapshot.from_network(network, flow.submit)
    except PlanningError:
        return None
    worst_node = min(
        tree.helpers + [root],
        key=lambda node: (tree.node_bottleneck(snapshot, node), node),
    )
    kids = tree.child_count(worst_node)
    if worst_node == root:
        direction = "down"
    elif kids == 0:
        direction = "up"
    else:
        down_share = snapshot.down_of(worst_node) / kids
        direction = (
            "up" if snapshot.up_of(worst_node) <= down_share else "down"
        )
    return BottleneckLink(
        node=worst_node, direction=direction, utilization=None, share=1.0
    )


def _sampled_bottleneck(
    flow: _Flow, samples, interval_hint: float
) -> BottleneckLink | None:
    """Name the flow's tightest link from flight-recorder samples.

    For every sample inside the flow's lifetime, the most-utilized
    resource among the flow's own edges (each edge consumes its source's
    uplink and its sink's downlink) wins that tick; the link winning the
    most time is the bottleneck.
    """
    if not samples or flow.finish is None or not flow.edges:
        return None
    resources: set[tuple[str, int]] = set()
    for src, dst in flow.edges:
        resources.add(("up", src))
        resources.add(("down", dst))
    won_time: dict[tuple[str, int], float] = {}
    util_sum: dict[tuple[str, int], float] = {}
    covered = 0
    for sample in samples:
        if not flow.submit <= sample.t <= flow.finish:
            continue
        covered += 1
        best_key = None
        best_util = 0.0
        for direction, node in resources:
            series = sample.up_util if direction == "up" else sample.down_util
            util = series.get(node, 0.0)
            if math.isinf(util):
                util = 1.0
            if util > best_util or (
                util == best_util and best_key is not None
                and (direction, node) < best_key
            ):
                best_key, best_util = (direction, node), util
        if best_key is None or best_util <= 0:
            continue
        won_time[best_key] = won_time.get(best_key, 0.0) + interval_hint
        util_sum[best_key] = util_sum.get(best_key, 0.0) + best_util
    if not won_time:
        return None
    winner = max(won_time, key=lambda key: (won_time[key], key[1] * -1))
    ticks = won_time[winner] / interval_hint
    duration = flow.finish - flow.submit or 1.0
    return BottleneckLink(
        node=winner[1],
        direction=winner[0],
        utilization=util_sum[winner] / ticks,
        share=min(won_time[winner] / duration, 1.0),
    )


# ----------------------------------------------------------------------
# Diagnosis
# ----------------------------------------------------------------------
def _diagnose_flow(
    flow: _Flow,
    claimed: float | None,
    oracle: float | None,
    cap_timeline,
    samples,
    sample_interval: float,
    network,
    straggler: dict | None = None,
) -> RepairDiagnosis:
    edges = flow.edges
    bytes_per_edge = flow.bytes_total / max(len(edges), 1)
    duration = (flow.finish or flow.submit) - flow.submit
    achieved = bytes_per_edge / duration if duration > 0 else 0.0
    reference, ref_rate = "none", None
    if oracle and oracle > 0:
        reference, ref_rate = "oracle", oracle
    elif claimed and claimed > 0:
        reference, ref_rate = "claimed", claimed
    components: dict[str, float] = {}
    if flow.kind == "hedge" and duration > 0:
        # A hedge flow exists only because a gray failure was suspected:
        # every second it ran (winner or cancelled loser) is spent on the
        # hedge, regardless of the rate it achieved.
        components = {"hedge": duration}
    elif ref_rate is not None and duration > 0 and (
        not flow.cancelled or straggler is not None
    ):
        # ``since``/``launch`` only exist for a straggler-cancelled
        # primary: its deficit after the detector flagged it is a stall,
        # and after the hedge launched it is hedge overlap, not ordinary
        # contention.  Ideal is what the flow *actually carried* over the
        # reference rate, so the identity D = sum(components) still holds
        # for a flow that never delivered its full byte count.
        since = float(straggler["since"]) if straggler else math.inf
        launch = (
            float(straggler.get("launch", math.inf))
            if straggler
            else math.inf
        )
        carried = 0.0
        contention = governor = stall = credit = hedge = 0.0
        for start, end, rate in _rate_profile(flow):
            for s, e in _split_at(start, end, (since, launch)):
                dt = e - s
                if dt <= 0:
                    continue
                if rate <= _STALL_EPS:
                    stall += dt
                    continue
                carried += rate * dt
                excess = (ref_rate - rate) * dt / ref_rate
                if rate > ref_rate:
                    credit += excess  # negative
                    continue
                if s >= launch:
                    hedge += excess
                elif s >= since:
                    stall += excess
                    continue
                else:
                    cap = _cap_at(cap_timeline, s)
                    if cap is not None and rate >= cap * (1 - _CAP_TOL):
                        governor += excess
                    else:
                        contention += excess
        ideal = (
            carried / ref_rate
            if straggler is not None
            else bytes_per_edge / ref_rate
        )
        components = {
            "ideal": ideal,
            "contention": contention,
            "governor": governor,
            "stall": stall,
            "credit": credit,
        }
        if straggler is not None:
            components["hedge"] = hedge
    bottleneck = _sampled_bottleneck(flow, samples, sample_interval)
    if bottleneck is None:
        bottleneck = _static_bottleneck(flow, network)
    anomalies = []
    # Beating the *claimed* B_min is legal when competitors finished
    # mid-flight (the claim is made against residual bandwidth at plan
    # time), so it is only anomalous when no oracle bound covers it.
    if (
        claimed and duration > 0 and achieved > claimed * _EXCEED_TOL
        and not (oracle and achieved <= oracle * _EXCEED_TOL)
    ):
        anomalies.append(
            f"achieved rate {achieved:.0f} exceeds claimed B_min "
            f"{claimed:.0f} ({achieved / claimed:.2f}x)"
        )
    if oracle and duration > 0 and achieved > oracle * _EXCEED_TOL:
        anomalies.append(
            f"achieved rate {achieved:.0f} exceeds oracle B_min "
            f"{oracle:.0f} ({achieved / oracle:.2f}x)"
        )
    if components:
        residual = duration - sum(components.values())
        if abs(residual) > max(1e-6 * duration, 1e-9):
            anomalies.append(
                f"attribution residual {residual:.3g}s of {duration:.3g}s "
                "(rate profile does not integrate to the byte count)"
            )
    return RepairDiagnosis(
        label=flow.label,
        track=flow.track,
        submit=flow.submit,
        finish=flow.finish if flow.finish is not None else flow.submit,
        shape=flow.shape,
        cancelled=flow.cancelled,
        edges=edges,
        bytes_per_edge=bytes_per_edge,
        achieved_rate=achieved,
        claimed_bmin=claimed,
        oracle_bmin=oracle,
        reference=reference,
        components=components,
        bottleneck=bottleneck,
        anomalies=anomalies,
    )


def _check_telemetry(telemetry: dict | None, anomalies: list[str]) -> None:
    """Byte-conservation invariants over a run's telemetry snapshot."""
    if not telemetry:
        return
    up = telemetry.get("per_bytes_up", {})
    down = telemetry.get("per_bytes_down", {})
    total_up = sum(up.values())
    total_down = sum(down.values())
    if total_up or total_down:
        scale = max(total_up, total_down)
        if abs(total_up - total_down) > 1e-6 * scale:
            anomalies.append(
                "bytes conservation violated: "
                f"sum(bytes_up)={total_up:.6g} != "
                f"sum(bytes_down)={total_down:.6g}"
            )
    counter = telemetry.get("counters", {}).get("bytes_transferred")
    if counter is not None and total_up and (
        abs(counter - total_up) > 1e-6 * max(counter, total_up)
    ):
        anomalies.append(
            f"bytes_transferred counter {counter:.6g} != "
            f"per-node uplink total {total_up:.6g}"
        )


def diagnose(
    events: Sequence,
    samples: Sequence | None = None,
    network=None,
    telemetry: dict | None = None,
    sampler=None,
) -> RunDiagnosis:
    """Attribute a finished run's repair time; see the module docstring.

    Args:
        events: the run's :class:`~repro.obs.TraceEvent` stream (live
            from a tracer or re-read via
            :func:`~repro.obs.events_from_jsonl`).
        samples: flight-recorder samples aligned with the events (a
            bound :class:`~repro.obs.FlightRecorder` may be passed as
            ``sampler`` instead).
        network: the simulated network; enables the oracle ``B_min``
            recomputation and static bottleneck naming.
        telemetry: a run's registry snapshot, for byte-conservation
            invariant checks.
    """
    sample_interval = 0.25
    if sampler is not None:
        samples = list(sampler.samples) if samples is None else samples
        sample_interval = sampler.interval
    samples = list(samples or [])
    if len(samples) >= 2:
        sample_interval = max(samples[1].t - samples[0].t, 1e-9)
    events = list(events)
    flows = _digest_flows(events)
    claimed_pool = _claimed_bmins(events)
    cap_timeline = _cap_timeline(events, samples)
    repairs: list[RepairDiagnosis] = []
    anomalies: list[str] = []
    consumed = [False] * len(claimed_pool)
    stragglers = _straggler_windows(events)
    for flow in flows:
        if flow.kind not in ("repair", "hedge"):
            continue
        if flow.finish is None:
            anomalies.append(
                f"flow {flow.label!r} never finished (unmatched span)"
            )
            continue
        straggler = (
            stragglers.get(flow.key)
            if flow.kind == "repair" and flow.cancelled
            else None
        )
        sink = _sink_of(flow)
        claimed = None
        # Latest unconsumed plan for this sink wins; a scheme whose name
        # prefixes the flow label is preferred, so traces holding several
        # schemes' runs (each restarting the clock) don't cross-match.
        for require_scheme in (True, False):
            for index in range(len(claimed_pool) - 1, -1, -1):
                t, requestor, bmin, scheme = claimed_pool[index]
                if consumed[index] or t > flow.submit + 1e-9:
                    continue
                if sink is not None and requestor != sink:
                    continue
                if require_scheme and not (
                    scheme and flow.label.startswith(scheme)
                ):
                    continue
                consumed[index] = True
                claimed = bmin
                break
            if claimed is not None:
                break
        oracle = _oracle_bmin(flow, network)
        repairs.append(
            _diagnose_flow(
                flow, claimed, oracle, cap_timeline, samples,
                sample_interval, network, straggler=straggler,
            )
        )
    totals: dict[str, float] = {}
    neck_seconds: dict[tuple[str, int], float] = {}
    oracle_num = oracle_den = 0.0
    claimed_num = claimed_den = 0.0
    for diag in repairs:
        for key, value in diag.components.items():
            totals[key] = totals.get(key, 0.0) + value
        if diag.bottleneck is not None:
            key = (diag.bottleneck.direction, diag.bottleneck.node)
            neck_seconds[key] = neck_seconds.get(key, 0.0) + (
                diag.bottleneck.share * diag.duration
            )
        ratio = diag.achieved_over_oracle
        if ratio is not None:
            oracle_num += ratio * diag.duration
            oracle_den += diag.duration
        ratio = diag.achieved_over_claimed
        if ratio is not None:
            claimed_num += ratio * diag.duration
            claimed_den += diag.duration
        anomalies.extend(
            f"{diag.label}: {issue}" for issue in diag.anomalies
        )
    _check_telemetry(telemetry, anomalies)
    if sampler is not None and sampler.dropped:
        anomalies.append(
            f"flight recorder dropped {sampler.dropped} samples "
            "(ring buffer overflow; raise capacity or interval)"
        )
    repair_time = sum(d.duration for d in repairs)
    capped_time = 0.0
    for diag in repairs:
        for start, end in _segments_with_cap(diag, cap_timeline):
            capped_time += end - start
    governor_summary = {}
    if cap_timeline:
        governor_summary = {
            "decisions": len(cap_timeline),
            "capped_fraction": (
                capped_time / repair_time if repair_time > 0 else 0.0
            ),
        }
    fault_counts: dict[str, int] = {}
    for event in events:
        prefix = event.name.split(".", 1)[0]
        if prefix == "fault" or event.name in (
            "repair.detect", "repair.retry", "repair.replan",
            "repair.failed", "health.straggler", "hedge.launch",
            "hedge.adopt", "hedge.cancel",
        ):
            fault_counts[event.name] = fault_counts.get(event.name, 0) + 1
    return RunDiagnosis(
        repairs=repairs,
        totals=totals,
        bottleneck_seconds=neck_seconds,
        achieved_over_oracle=(
            oracle_num / oracle_den if oracle_den > 0 else None
        ),
        achieved_over_claimed=(
            claimed_num / claimed_den if claimed_den > 0 else None
        ),
        anomalies=anomalies,
        governor=governor_summary,
        faults=fault_counts,
    )


def _segments_with_cap(diag: RepairDiagnosis, cap_timeline):
    """Sub-intervals of a repair during which a finite cap was in force."""
    if not cap_timeline:
        return
    bounds = [diag.submit]
    bounds += [t for t, _ in cap_timeline if diag.submit < t < diag.finish]
    bounds.append(diag.finish)
    for start, end in zip(bounds, bounds[1:]):
        if end > start and _cap_at(cap_timeline, start) is not None:
            yield start, end
