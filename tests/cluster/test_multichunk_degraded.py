"""Integration tests: multi-chunk stripe repair and degraded reads."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import BandwidthSnapshot, PivotRepairPlanner
from repro.ec import RSCode
from repro.exceptions import ClusterError

NODE_COUNT = 14
CHUNK = 128


def uniform_snapshot(count=NODE_COUNT, value=1000.0):
    return BandwidthSnapshot(
        up={i: value for i in range(count)},
        down={i: value for i in range(count)},
    )


@pytest.fixture
def cluster():
    c = Cluster(NODE_COUNT, RSCode(9, 6))
    c.write_random_stripes(3, CHUNK, np.random.default_rng(11))
    return c


def originals_of(cluster, stripe, indices):
    return {
        i: cluster.nodes[stripe.placement[i]]
        .read(stripe.chunk_id(i))
        .copy()
        for i in indices
    }


def spare_nodes(cluster, stripe, count):
    holders = set(stripe.placement)
    return [n for n in range(cluster.node_count) if n not in holders][:count]


class TestRepairStripe:
    def test_single_loss_uses_pipelined_path(self, cluster):
        stripe = cluster.stripes[0]
        lost = [2]
        originals = originals_of(cluster, stripe, lost)
        cluster.fail_node(stripe.placement[2])
        spare = spare_nodes(cluster, stripe, 1)[0]
        rebuilt = cluster.repair_stripe(
            PivotRepairPlanner(), uniform_snapshot(), stripe, lost,
            {2: spare},
        )
        np.testing.assert_array_equal(rebuilt[2], originals[2])
        assert cluster.nodes[spare].has(stripe.chunk_id(2))

    def test_double_loss_falls_back_to_conventional(self, cluster):
        stripe = cluster.stripes[0]
        lost = [1, 7]
        originals = originals_of(cluster, stripe, lost)
        cluster.fail_node(stripe.placement[1])
        cluster.fail_node(stripe.placement[7])
        spares = spare_nodes(cluster, stripe, 2)
        rebuilt = cluster.repair_stripe(
            PivotRepairPlanner(), uniform_snapshot(), stripe, lost,
            {1: spares[0], 7: spares[1]},
        )
        for index in lost:
            np.testing.assert_array_equal(rebuilt[index], originals[index])
        assert cluster.nodes[spares[0]].has(stripe.chunk_id(1))
        assert cluster.nodes[spares[1]].has(stripe.chunk_id(7))

    def test_triple_loss_including_parity(self, cluster):
        stripe = cluster.stripes[1]
        lost = [0, 6, 8]  # one data, two parity chunks
        originals = originals_of(cluster, stripe, lost)
        for index in lost:
            cluster.fail_node(stripe.placement[index])
        spares = spare_nodes(cluster, stripe, 3)
        rebuilt = cluster.repair_stripe(
            PivotRepairPlanner(), uniform_snapshot(), stripe, lost,
            dict(zip(lost, spares)),
        )
        for index in lost:
            np.testing.assert_array_equal(rebuilt[index], originals[index])

    def test_too_many_losses_rejected(self, cluster):
        stripe = cluster.stripes[0]
        lost = [0, 1, 2, 3]  # n - k = 3 < 4 losses: unrecoverable
        for index in lost:
            cluster.fail_node(stripe.placement[index])
        spares = spare_nodes(cluster, stripe, 4)
        with pytest.raises(ClusterError):
            cluster.repair_stripe(
                PivotRepairPlanner(), uniform_snapshot(), stripe, lost,
                dict(zip(lost, spares)),
            )

    def test_empty_loss_list_rejected(self, cluster):
        with pytest.raises(ClusterError):
            cluster.repair_stripe(
                PivotRepairPlanner(), uniform_snapshot(),
                cluster.stripes[0], [], {},
            )

    def test_missing_replacement_rejected(self, cluster):
        stripe = cluster.stripes[0]
        with pytest.raises(ClusterError):
            cluster.repair_stripe(
                PivotRepairPlanner(), uniform_snapshot(), stripe, [1, 2],
                {1: 0},
            )


class TestDegradedRead:
    def test_healthy_chunk_served_directly(self, cluster):
        stripe = cluster.stripes[0]
        expected = cluster.nodes[stripe.placement[3]].read(
            stripe.chunk_id(3)
        )
        payload = cluster.degraded_read(
            PivotRepairPlanner(), uniform_snapshot(), stripe, 3,
            client=spare_nodes(cluster, stripe, 1)[0],
        )
        np.testing.assert_array_equal(payload, expected)

    def test_failed_chunk_reconstructed_on_the_fly(self, cluster):
        stripe = cluster.stripes[0]
        original = cluster.nodes[stripe.placement[4]].read(
            stripe.chunk_id(4)
        ).copy()
        cluster.fail_node(stripe.placement[4])
        client = spare_nodes(cluster, stripe, 1)[0]
        payload = cluster.degraded_read(
            PivotRepairPlanner(), uniform_snapshot(), stripe, 4, client
        )
        np.testing.assert_array_equal(payload, original)
        # A degraded read does not persist the chunk anywhere.
        assert not cluster.nodes[client].has(stripe.chunk_id(4))

    def test_degraded_read_after_transient_recovery(self, cluster):
        stripe = cluster.stripes[2]
        holder = stripe.placement[0]
        original = cluster.nodes[holder].read(stripe.chunk_id(0)).copy()
        cluster.fail_node(holder)
        client = spare_nodes(cluster, stripe, 1)[0]
        first = cluster.degraded_read(
            PivotRepairPlanner(), uniform_snapshot(), stripe, 0, client
        )
        np.testing.assert_array_equal(first, original)
        # The node comes back empty (transient failure lost its disk here),
        # so reads keep being served degraded.
        cluster.nodes[holder].recover()
        second = cluster.degraded_read(
            PivotRepairPlanner(), uniform_snapshot(), stripe, 0, client
        )
        np.testing.assert_array_equal(second, original)
