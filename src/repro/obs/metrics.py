"""Metrics registry: counters, gauges, histograms with percentiles.

A :class:`MetricsRegistry` is filled during a repair run and snapshotted
into the ``telemetry`` field of the result records.  Metric names are
plain strings; per-node series use a ``name/node`` convention (e.g.
``bytes_up/3``) which :meth:`MetricsRegistry.snapshot` also folds into
nested ``per_node_*`` maps for convenient consumption.
"""

from __future__ import annotations

import math
import random
import zlib

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Observations kept verbatim before a histogram switches to reservoir
#: sampling.  Repair runs stay far below this; loadgen latency streams
#: (millions of client requests) cross it and get bounded memory instead
#: of an unbounded raw list.
DEFAULT_RESERVOIR_SIZE = 8192


class Histogram:
    """Bounded-memory observations; count/min/max/mean/percentiles.

    Below ``reservoir_size`` observations every sample is kept and
    percentiles are exact (nearest-rank over the raw list — the original
    semantics).  Past the threshold the sample list becomes a uniform
    reservoir (Vitter's Algorithm R) with a deterministic, name-seeded
    RNG, so percentiles turn into unbiased estimates while ``count``,
    ``min``, ``max``, and ``mean`` stay exact at any volume.
    """

    __slots__ = ("name", "samples", "count", "_min", "_max", "_sum",
                 "_reservoir_size", "_rng")

    def __init__(self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        if reservoir_size < 1:
            raise ValueError("reservoir size must be >= 1")
        self.name = name
        self.samples: list[float] = []
        self.count = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0
        self._reservoir_size = reservoir_size
        # Lazily created on first eviction: deterministic per name, so
        # seeded runs stay reproducible without a global RNG.
        self._rng: random.Random | None = None

    @property
    def exact(self) -> bool:
        """True while every observation is still held verbatim."""
        return self.count == len(self.samples)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self.samples) < self._reservoir_size:
            self.samples.append(value)
            return
        if self._rng is None:
            self._rng = random.Random(zlib.crc32(self.name.encode()))
        slot = self._rng.randrange(self.count)
        if slot < self._reservoir_size:
            self.samples[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100].

        Exact while in exact mode; a reservoir estimate afterwards.
        """
        if not self.samples:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of [0, 100]")
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p99.9": self.percentile(99.9),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._gauges, self._histograms)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._counters, self._histograms)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._counters, self._gauges)
            metric = self._histograms[name] = Histogram(name)
        return metric

    @staticmethod
    def _check_free(name: str, *families: dict) -> None:
        for family in families:
            if name in family:
                raise ValueError(
                    f"metric {name!r} already registered with another type"
                )

    def snapshot(self) -> dict:
        """Plain-dict view of every metric, JSON-serialisable.

        ``name/key`` counters and gauges are additionally folded into
        nested ``per_<name>`` maps, so ``bytes_up/3`` shows up both as a
        flat counter and under ``per_bytes_up[3]``.
        """
        counters = {
            name: metric.value for name, metric in sorted(self._counters.items())
        }
        gauges = {
            name: metric.value for name, metric in sorted(self._gauges.items())
        }
        out: dict = {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(self._histograms.items())
            },
        }
        for family in (counters, gauges):
            for name, value in family.items():
                if "/" not in name:
                    continue
                base, key = name.split("/", 1)
                out.setdefault(f"per_{base}", {})[key] = value
        return out
