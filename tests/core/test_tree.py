"""Tests for the RepairTree structure and Lemma 1 B_min."""

import pytest

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.tree import RepairTree
from repro.exceptions import PlanningError


def snap(up, down):
    return BandwidthSnapshot(up=up, down=down)


class TestStructure:
    def test_basic_tree(self):
        tree = RepairTree(0, {1: 0, 2: 0, 3: 1})
        assert tree.root == 0
        assert tree.helpers == [1, 2, 3]
        assert tree.parent(3) == 1
        assert tree.parent(0) is None
        assert tree.children(0) == [1, 2]
        assert tree.child_count(1) == 1
        assert tree.leaves() == [2, 3]
        assert tree.non_leaf_helpers() == [1]
        assert tree.edges() == [(1, 0), (2, 0), (3, 1)]
        assert len(tree) == 4
        assert 3 in tree and 9 not in tree

    def test_depth(self):
        assert RepairTree(0, {1: 0, 2: 1, 3: 2}).depth() == 3
        assert RepairTree(0, {1: 0, 2: 0}).depth() == 1

    def test_root_with_parent_rejected(self):
        with pytest.raises(PlanningError):
            RepairTree(0, {0: 1, 1: 0})

    def test_unknown_parent_rejected(self):
        with pytest.raises(PlanningError):
            RepairTree(0, {1: 9})

    def test_cycle_rejected(self):
        with pytest.raises(PlanningError):
            RepairTree(0, {1: 2, 2: 1})

    def test_unknown_node_queries_rejected(self):
        tree = RepairTree(0, {1: 0})
        with pytest.raises(PlanningError):
            tree.parent(9)
        with pytest.raises(PlanningError):
            tree.children(9)

    def test_equality_and_hash(self):
        a = RepairTree(0, {1: 0, 2: 1})
        b = RepairTree(0, {2: 1, 1: 0})
        c = RepairTree(0, {1: 0, 2: 0})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_render_contains_all_nodes(self):
        text = RepairTree(0, {1: 0, 2: 1, 3: 0}).render()
        for node in ("N0", "N1", "N2", "N3"):
            assert node in text
        assert "requestor" in text

    def test_chain_constructor(self):
        tree = RepairTree.chain(0, [3, 2, 1])
        assert tree.parent(3) == 0
        assert tree.parent(2) == 3
        assert tree.parent(1) == 2
        assert tree.depth() == 3

    def test_chain_needs_helpers(self):
        with pytest.raises(PlanningError):
            RepairTree.chain(0, [])

    def test_star_constructor(self):
        tree = RepairTree.star(0, [1, 2, 3])
        assert tree.leaves() == [1, 2, 3]
        assert tree.depth() == 1

    def test_star_needs_helpers(self):
        with pytest.raises(PlanningError):
            RepairTree.star(0, [])


class TestBmin:
    def test_chain_bmin_is_slowest_link(self):
        view = snap(
            {0: 1000, 1: 40, 2: 500}, {0: 1000, 1: 1000, 2: 1000}
        )
        tree = RepairTree.chain(0, [1, 2])
        # Node 1 is non-leaf: min(up=40, down/1=1000) = 40; leaf 2: up=500.
        assert tree.bmin(view) == 40

    def test_root_downlink_split_among_children(self):
        view = snap({0: 10_000, 1: 10_000, 2: 10_000}, {0: 90, 1: 1, 2: 1})
        tree = RepairTree.star(0, [1, 2])
        assert tree.bmin(view) == pytest.approx(45)

    def test_root_uplink_never_constrains(self):
        # The requestor only downloads; up(root)=0 must not matter.
        view = snap({0: 0, 1: 100}, {0: 100, 1: 100})
        tree = RepairTree.star(0, [1])
        assert tree.bmin(view) == 100

    def test_non_leaf_helper_downlink_split(self):
        view = snap(
            {0: 1000, 1: 500, 2: 1000, 3: 1000},
            {0: 1000, 1: 300, 2: 1000, 3: 1000},
        )
        tree = RepairTree(0, {1: 0, 2: 1, 3: 1})
        # Node 1 has 2 children: min(up=500, 300/2=150) = 150.
        assert tree.node_bottleneck(view, 1) == pytest.approx(150)
        assert tree.bmin(view) == pytest.approx(150)

    def test_paper_figure4_final_tree_bmin(self):
        """The final tree of Figure 4 achieves B_min = 450 Mb/s."""
        up = {2: 750, 3: 500, 4: 150, 5: 500, 6: 500, 0: 980}
        down = {2: 100, 3: 130, 4: 1000, 5: 200, 6: 900, 0: 980}
        view = snap(up, down)
        tree = RepairTree(0, {6: 0, 2: 0, 5: 6, 3: 6})
        assert tree.bmin(view) == pytest.approx(450)

    def test_childless_root_rejected_in_bottleneck(self):
        tree = RepairTree.star(0, [1])
        view = snap({0: 1, 1: 1}, {0: 1, 1: 1})
        # Construct a degenerate query directly.
        with pytest.raises(PlanningError):
            tree.node_bottleneck(view, 9)
