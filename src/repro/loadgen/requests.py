"""Client request records for the foreground traffic engine.

A :class:`ClientRequest` is one foreground storage operation emitted by a
generator (:mod:`repro.loadgen.generator`): a read of one data chunk's
range or a write of a whole object.  The engine
(:mod:`repro.loadgen.engine`) turns each request into fluid flows on the
network simulator and records a :class:`RequestOutcome` when they finish.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import LoadGenError

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class ClientRequest:
    """One foreground storage request.

    Attributes:
        arrival: seconds since the start of the load run (the engine
            shifts this by the simulator time at which it is bound).
        kind: ``"read"`` (fetch ``size`` bytes of one data chunk) or
            ``"write"`` (store an object of ``size`` bytes across the
            stripe's nodes).
        stripe_id: target stripe.
        chunk_index: data chunk a read targets (ignored for writes).
        client: node issuing the request.
        size: object bytes moved by the request.
        tenant: workload the request belongs to (telemetry/SLO label).
    """

    arrival: float
    kind: str
    stripe_id: int
    chunk_index: int
    client: int
    size: int
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise LoadGenError("request arrival cannot be negative")
        if self.kind not in (READ, WRITE):
            raise LoadGenError(f"unknown request kind {self.kind!r}")
        if self.size <= 0:
            raise LoadGenError("request size must be positive")
        if not self.tenant:
            raise LoadGenError("request tenant cannot be empty")


@dataclass
class RequestOutcome:
    """How one request fared: timing and the path it took.

    ``finished - arrival`` is the client-visible latency, including any
    queueing between arrival and flow submission (e.g. while the Master's
    serial planning froze the clock).  ``degraded`` marks reads that had
    to reconstruct their chunk through a repair tree; ``local`` marks
    requests that moved no network bytes (client held the data).
    """

    request: ClientRequest
    arrival: float
    finished: float
    degraded: bool = False
    local: bool = False
    bytes_moved: float = 0.0

    @property
    def latency(self) -> float:
        return self.finished - self.arrival
