"""E-F5a-c: overall single-chunk repair time (Figure 5(a)-(c)).

Paper shape: PivotRepair is always at least as fast as RP (up to 71.27%
faster at k=10); PPT matches PivotRepair for small k but its overall time
explodes at (12, 8) and especially (14, 10), where enumeration dominates
(the paper reports 1.31e4 s at (14, 10) on TPC-DS).
"""

import pytest

from conftest import PAPER_CODES, record
from fig5_common import SCHEMES, format_grid


@pytest.mark.benchmark(group="fig5-overall")
def test_fig5_overall_repair_time(benchmark, fig5_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = format_grid(
        fig5_results,
        "overall_seconds",
        "Figure 5(a-c): overall single-chunk repair time (64 MiB chunk)",
    )
    record("fig5_overall", lines)

    for name, by_code in fig5_results.items():
        for code, by_scheme in by_code.items():
            pivot = by_scheme["PivotRepair"].overall_seconds
            rp = by_scheme["RP"].overall_seconds
            ppt = by_scheme["PPT"].overall_seconds
            # PivotRepair never loses to RP (its B_min is optimal and its
            # planning is microseconds).
            assert pivot <= rp * 1.05, (name, code)
            # PPT is within reach of PivotRepair at k = 4 but orders of
            # magnitude slower at k = 10 (enumeration blow-up).
            if code == (6, 4):
                assert ppt <= pivot + 1.0, (name, code)
            if code == (14, 10):
                assert ppt > 50 * pivot, (name, code)
        benchmark.extra_info[name] = {
            str(code): {
                scheme: round(by_scheme[scheme].overall_seconds, 4)
                for scheme in SCHEMES
            }
            for code, by_scheme in by_code.items()
        }

    # Headline claim: repair-time reduction vs RP at k = 10 is large.
    reductions = []
    for name, by_code in fig5_results.items():
        by_scheme = by_code[(14, 10)]
        rp = by_scheme["RP"].overall_seconds
        pivot = by_scheme["PivotRepair"].overall_seconds
        reductions.append(1 - pivot / rp)
    best = max(reductions)
    record(
        "fig5_overall_headline",
        [
            "Headline: max overall repair-time reduction vs RP at (14,10): "
            f"{100 * best:.1f}% (paper: up to 71.27%)"
        ],
    )
    assert best > 0.2
    assert PAPER_CODES == list(fig5_results["TPC-DS"].keys())
