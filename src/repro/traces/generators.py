"""Synthetic hot-storage workload generators.

The paper measures used bandwidth from real TPC-DS, TPC-H, and SWIM runs on
a 16-node, 1 Gb/s Hadoop cluster.  Those measurements are unavailable
offline, so these generators synthesise traces with the same *statistical*
congestion behaviour the paper reports:

* congestion is frequent and the congested set changes rapidly
  (Observation 1 / Figure 2);
* used bandwidths are heterogeneous across nodes when congestion happens,
  with the conditional heterogeneity P(C_v > 0.5 | congestion) ordered
  TPC-H > TPC-DS > SWIM, inside Table I's bands (~58-67 %, ~37-40 %,
  ~24-30 %) and increasing with the usage-rate threshold;
* uncongested nodes (pivots) persist even while others saturate
  (Observation 2).

The model superposes two event types:

* **waves** — cluster-wide phases (shuffles, bulk scans) that load *every*
  node by a similar fraction; they congest the cluster homogeneously
  (low C_v) and rarely drive links to exactly 100 %;
* **hotspots** — jobs touching only a few nodes at high intensity; they
  saturate those links outright (usage 100 %) while the rest stay quiet,
  which is exactly the high-C_v congestion PivotRepair exploits.

Query workloads (TPC-H) are hotspot-heavy; MapReduce (SWIM) is wave-heavy;
TPC-DS mixes both.  The conditional C_v statistics rise with the usage
threshold because only hotspots reach 100 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError
from repro.traces.workload import DEFAULT_CAPACITY, WorkloadTrace


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of the wave + hotspot superposition model."""

    name: str
    #: Cluster-wide wave arrivals per second and mean duration (seconds).
    wave_rate: float
    wave_duration: float
    #: Wave load per node, uniform bounds as a fraction of capacity.
    wave_low: float
    wave_high: float
    #: Per-node jitter applied to the wave load (std dev, fraction).
    wave_jitter: float
    #: Hard cap on any node's wave load (fraction); waves never saturate.
    wave_cap: float
    #: Hotspot job arrivals per second and mean duration (seconds).
    hotspot_rate: float
    hotspot_duration: float
    #: Nodes touched by one hotspot (inclusive bounds).
    hotspot_nodes_min: int
    hotspot_nodes_max: int
    #: Hotspot load per touched node, uniform bounds (fraction of capacity).
    hotspot_low: float
    hotspot_high: float
    #: Always-on background load fraction.
    background: float = 0.02

    def __post_init__(self) -> None:
        if self.wave_rate < 0 or self.hotspot_rate < 0:
            raise TraceError("event rates cannot be negative")
        if self.wave_duration <= 0 or self.hotspot_duration <= 0:
            raise TraceError("event durations must be positive")
        if not 0 <= self.wave_low <= self.wave_high:
            raise TraceError("bad wave load bounds")
        if not self.wave_high <= self.wave_cap <= 1.0:
            raise TraceError("wave_cap must be in [wave_high, 1]")
        if not 0 <= self.hotspot_low <= self.hotspot_high:
            raise TraceError("bad hotspot load bounds")
        if not 1 <= self.hotspot_nodes_min <= self.hotspot_nodes_max:
            raise TraceError("bad hotspot node bounds")
        if not 0 <= self.background < 1:
            raise TraceError("background must be in [0, 1)")


#: Decision-support benchmark: mixes cluster scans with skewed joins.
TPC_DS = WorkloadProfile(
    name="TPC-DS",
    wave_rate=0.037,
    wave_duration=25.0,
    wave_low=0.55,
    wave_high=0.85,
    wave_jitter=0.04,
    wave_cap=0.87,
    hotspot_rate=0.050,
    hotspot_duration=12.0,
    hotspot_nodes_min=1,
    hotspot_nodes_max=3,
    hotspot_low=0.95,
    hotspot_high=1.0,
)

#: Classical business queries: strongly hotspot-dominated.
TPC_H = WorkloadProfile(
    name="TPC-H",
    wave_rate=0.019,
    wave_duration=22.0,
    wave_low=0.55,
    wave_high=0.85,
    wave_jitter=0.04,
    wave_cap=0.87,
    hotspot_rate=0.090,
    hotspot_duration=14.0,
    hotspot_nodes_min=1,
    hotspot_nodes_max=3,
    hotspot_low=0.95,
    hotspot_high=1.0,
)

#: Facebook MapReduce trace: wave-dominated shuffle phases.
SWIM = WorkloadProfile(
    name="SWIM",
    wave_rate=0.050,
    wave_duration=28.0,
    wave_low=0.55,
    wave_high=0.85,
    wave_jitter=0.04,
    wave_cap=0.87,
    hotspot_rate=0.014,
    hotspot_duration=10.0,
    hotspot_nodes_min=1,
    hotspot_nodes_max=3,
    hotspot_low=0.95,
    hotspot_high=1.0,
)

PROFILES = {p.name: p for p in (TPC_DS, TPC_H, SWIM)}


def _poisson_events(
    rng: np.random.Generator, rate: float, duration: int, mean_length: float
) -> list[tuple[int, int]]:
    """(start, end) sample ranges of a Poisson event process."""
    events = []
    if rate <= 0:
        return events
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= duration:
            return events
        length = max(1, int(round(rng.exponential(mean_length))))
        start = int(t)
        events.append((start, min(start + length, duration)))


def generate_trace(
    profile: WorkloadProfile,
    node_count: int = 16,
    duration: int = 6000,
    capacity: float = DEFAULT_CAPACITY,
    seed: int = 0,
) -> WorkloadTrace:
    """Generate a synthetic used-bandwidth trace for one workload.

    Deterministic for a given seed.  Matches the paper's measurement setup
    by default: 16 nodes, 6000 one-second samples, 1 Gb/s edges.
    """
    if node_count < profile.hotspot_nodes_min:
        raise TraceError(
            f"{profile.name} hotspots touch at least "
            f"{profile.hotspot_nodes_min} nodes; cluster has {node_count}"
        )
    if duration <= 0:
        raise TraceError("duration must be positive")
    rng = np.random.default_rng(seed)
    used_up = np.full(
        (node_count, duration), profile.background * capacity, dtype=float
    )
    used_down = used_up.copy()

    # Concurrent waves do not stack: a cluster-wide phase saturates shared
    # resources, so overlapping waves contribute their element-wise maximum
    # (otherwise two waves would saturate every link at once, erasing the
    # heterogeneity Table I reports).
    wave_up = np.zeros_like(used_up)
    wave_down = np.zeros_like(used_down)
    for start, end in _poisson_events(
        rng, profile.wave_rate, duration, profile.wave_duration
    ):
        base = rng.uniform(profile.wave_low, profile.wave_high)
        jitter_up = rng.normal(0.0, profile.wave_jitter, size=node_count)
        jitter_down = rng.normal(0.0, profile.wave_jitter, size=node_count)
        load_up = np.clip(base + jitter_up, 0.0, profile.wave_cap)
        load_down = np.clip(base + jitter_down, 0.0, profile.wave_cap)
        np.maximum(
            wave_up[:, start:end], load_up[:, None] * capacity,
            out=wave_up[:, start:end],
        )
        np.maximum(
            wave_down[:, start:end], load_down[:, None] * capacity,
            out=wave_down[:, start:end],
        )
    used_up += wave_up
    used_down += wave_down

    for start, end in _poisson_events(
        rng, profile.hotspot_rate, duration, profile.hotspot_duration
    ):
        touched = rng.choice(
            node_count,
            size=int(
                rng.integers(
                    profile.hotspot_nodes_min, profile.hotspot_nodes_max + 1
                )
            ),
            replace=False,
        )
        for node in touched:
            # Hotspot traffic is directional: a node bulk-receiving data
            # saturates its downlink while its uplink stays free, and vice
            # versa (cf. Figure 3, where N2 has up 750 / down 100 Mb/s).
            # The *used node bandwidth* max(up, down) — what Table I and
            # Figure 2 measure — saturates either way.
            direction = rng.choice(("down", "up", "both"), p=(0.4, 0.4, 0.2))
            load = (
                rng.uniform(profile.hotspot_low, profile.hotspot_high)
                * capacity
            )
            if direction in ("up", "both"):
                used_up[node, start:end] += load
            if direction in ("down", "both"):
                used_down[node, start:end] += load

    np.clip(used_up, 0.0, capacity, out=used_up)
    np.clip(used_down, 0.0, capacity, out=used_down)
    return WorkloadTrace(
        name=profile.name,
        capacity=capacity,
        used_up=used_up,
        used_down=used_down,
    )


def generate_all(
    node_count: int = 16,
    duration: int = 6000,
    capacity: float = DEFAULT_CAPACITY,
    seed: int = 0,
) -> dict[str, WorkloadTrace]:
    """Generate the paper's three workload traces with one call."""
    return {
        name: generate_trace(
            profile, node_count, duration, capacity, seed=seed + index
        )
        for index, (name, profile) in enumerate(PROFILES.items())
    }
