#!/usr/bin/env python3
"""Full-node repair under live client traffic, with and without QoS.

A 16-node cluster loses one node while clients keep issuing reads and
writes (Poisson arrivals, Zipfian stripe popularity).  Client flows and
repair flows compete max-min on the same links; reads of the failed
node's chunks go through the pipelined degraded-read path.  The same
repair is run three times:

* governor ``none``     — repair takes whatever bandwidth it can,
* governor ``static``   — repair clamped to a fixed 250 Mb/s per task,
* governor ``adaptive`` — AIMD against a client p99 latency SLO.

Run:  python examples/foreground_interference.py
"""

import numpy as np

from repro import PivotRepairPlanner, RSCode, repair_full_node
from repro.ec import place_stripes
from repro.loadgen import (
    ForegroundEngine,
    LoadProfile,
    generate_requests,
    make_governor,
)
from repro.network.topology import StarNetwork
from repro.repair import ExecutionConfig
from repro.units import format_latency, gbps, mbps, mib, to_mbps

NODE_COUNT = 16


def main() -> None:
    code = RSCode(6, 4)
    network = StarNetwork.uniform(NODE_COUNT, gbps(1))
    stripes = place_stripes(16, code, NODE_COUNT, np.random.default_rng(0))
    failed_node = stripes[0].placement[0]
    config = ExecutionConfig(chunk_size=mib(256))

    quiet = repair_full_node(
        PivotRepairPlanner(), network, stripes, failed_node,
        concurrency=4, config=config,
    )
    print(
        f"Node {failed_node} failed; quiet repair takes "
        f"{quiet.total_seconds:.1f} s with no clients around.\n"
    )

    profile = LoadProfile(
        arrival_rate=80.0, duration=max(8.0, quiet.total_seconds),
        read_fraction=0.9, request_size=int(mib(2)), zipf_s=0.9,
    )
    governors = {
        "none": {},
        "static": {"cap": mbps(250)},
        "adaptive": {"slo_p99": 0.07, "floor_rate": mbps(125)},
    }
    print(
        f"{'governor':>8} | {'repair':>8} | {'client p50':>10} | "
        f"{'client p99':>10} | {'goodput':>11} | {'degraded':>8}"
    )
    for name, kwargs in governors.items():
        requests = generate_requests(profile, stripes, NODE_COUNT, seed=0)
        engine = ForegroundEngine(
            stripes, requests, PivotRepairPlanner(),
            failed_nodes={failed_node}, recent_window=2.0,
        )
        result = repair_full_node(
            PivotRepairPlanner(), network, stripes, failed_node,
            concurrency=4, config=config,
            foreground=engine, governor=make_governor(name, **kwargs),
        )
        engine.drain()
        latency = engine.read_latency()
        summary = engine.summary()
        print(
            f"{name:>8} | {result.total_seconds:>6.1f} s | "
            f"{format_latency(latency.percentile(50)):>10} | "
            f"{format_latency(latency.percentile(99)):>10} | "
            f"{to_mbps(summary['goodput_bytes_per_second']):>6.0f} Mb/s | "
            f"{summary['degraded_reads']:>8}"
        )
    print(
        "\nThe adaptive governor trades a bounded amount of repair time "
        "for most of the client tail-latency inflation."
    )


if __name__ == "__main__":
    main()
