"""Plain-text reporting helpers (tables, bars, unit formatting).

Used by the CLI and the examples; benchmarks write similar tables under
``benchmarks/results/``.  No plotting dependencies — output is terminal-
and log-friendly text.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.units import to_mbps


def format_seconds(value: float) -> str:
    """Human-scaled duration: us / ms / s with sensible precision."""
    if value < 0:
        return "-" + format_seconds(-value)
    if value >= 100:
        return f"{value:.3g} s"
    if value >= 0.1:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"


def format_mbps(bytes_per_second: float) -> str:
    """Bandwidth in Mb/s (the paper's unit)."""
    return f"{to_mbps(bytes_per_second):.0f} Mb/s"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table; columns auto-size to their content."""
    if not headers:
        raise ValueError("a table needs headers")
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        cells.append([str(x) for x in row])
    widths = [
        max(len(line[col]) for line in cells) for col in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(cells):
        lines.append(
            "  ".join(text.rjust(width) for text, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart, scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values lengths differ")
    if not labels:
        return ""
    if any(v < 0 for v in values):
        raise ValueError("bar charts need non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        suffix = f" {value:g}{unit}" if unit else f" {value:g}"
        lines.append(f"{label.rjust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline (8 levels) for a time series."""
    glyphs = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return glyphs[0] * len(values)
    span = high - low
    return "".join(
        glyphs[min(int((v - low) / span * 8), 7)] for v in values
    )
