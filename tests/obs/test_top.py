"""Dashboard rendering tests for ``repro top``."""

import io

import pytest

from repro.obs import Dashboard, LiveTop, SLOMonitor, SLOSpec, TimeSeriesDB
from repro.obs.top import _bar, _latency, _rate


def populated_tsdb(node_count=3):
    db = TimeSeriesDB()
    for t in (9.0, 9.5, 10.0):
        for node in range(node_count):
            db.record(
                "link_utilization", t, 0.1 * (node + 1),
                node=node, direction="up",
            )
            db.record(
                "link_utilization", t, 0.05 * (node + 1),
                node=node, direction="down",
            )
        db.record("class_rate", t, 2e6, kind="repair")
        db.record("class_rate", t, 5e5, kind="foreground")
        db.record("active_tasks", t, 4, kind="repair")
        db.record("repair_cap", t, -1.0)
        db.record("repair_progress", t, t / 20.0)
        for tenant in ("tenant-0", "tenant-1"):
            db.inc("fg_requests_total", t, 10.0, tenant=tenant)
            db.inc("fg_bytes_total", t, 1e6, tenant=tenant)
            db.record("fg_read_latency", t, 0.003, tenant=tenant)
    return db


class TestHelpers:
    def test_bar_clamps_and_sizes(self):
        assert _bar(0.5, 4) == "##.."
        assert _bar(2.0, 4) == "####"
        assert _bar(-1.0, 4) == "...."
        assert _bar(float("nan"), 4) == "    "

    def test_rate_units(self):
        assert _rate(2.5e6) == "2.5 MB/s"
        assert _rate(900.0) == "0.9 kB/s"
        assert _rate(float("nan")) == "n/a"

    def test_latency_units(self):
        assert _latency(0.003) == "3 ms"
        assert _latency(2.5) == "2.50 s"
        assert _latency(float("nan")) == "n/a"


class TestDashboard:
    def test_render_from_populated_tsdb(self):
        frame = Dashboard(populated_tsdb()).render()
        assert "repro top · t=10.00s (sim)" in frame
        assert "governor  cap uncapped" in frame
        assert "repair    [" in frame and "50.0%" in frame
        assert "active    repair=4" in frame
        assert "link utilization (up | down)" in frame
        assert "node   2" in frame
        assert "throughput by class" in frame
        assert "repair       2.0 MB/s" in frame
        assert "foreground   500.0 kB/s" in frame
        assert "tenants (last 5s)" in frame
        assert "tenant-0" in frame and "tenant-1" in frame

    def test_capped_governor_shows_rate(self):
        db = populated_tsdb()
        db.record("repair_cap", 11.0, 3e6)
        frame = Dashboard(db).render()
        assert "governor  cap 3.0 MB/s per flow" in frame

    def test_busiest_nodes_first_and_truncation(self):
        db = populated_tsdb(node_count=5)
        frame = Dashboard(db, max_nodes=2).render()
        lines = frame.splitlines()
        node_lines = [line for line in lines if line.startswith("  node")]
        assert len(node_lines) == 2
        # node 4 has the highest utilization, node 3 next.
        assert node_lines[0].startswith("  node   4")
        assert node_lines[1].startswith("  node   3")
        assert "… 3 quieter nodes not shown" in frame

    def test_empty_tsdb_renders_header_only(self):
        frame = Dashboard(TimeSeriesDB()).render()
        assert frame == "repro top · t=0.00s (sim)"

    def test_width_truncates_lines(self):
        frame = Dashboard(populated_tsdb()).render(width=30)
        assert all(len(line) <= 30 for line in frame.splitlines())

    def test_tenants_discovered_from_labels(self):
        dashboard = Dashboard(populated_tsdb())
        assert dashboard.tenants() == ["tenant-0", "tenant-1"]
        assert Dashboard(TimeSeriesDB()).tenants() == []


class TestDashboardSLO:
    def make(self, db):
        spec = SLOSpec(
            name="lat-tenant-0", kind="latency", tenant="tenant-0",
            threshold=0.001, budget=0.05,
            short_window=1.0, long_window=2.0,
        )
        return SLOMonitor(db, [spec])

    def test_unevaluated_spec_is_flagged(self):
        db = populated_tsdb()
        frame = Dashboard(db, slo=self.make(db)).render()
        assert "lat-tenant-0         (not evaluated yet)" in frame

    def test_firing_slo_and_alert_feed(self):
        db = populated_tsdb()
        monitor = self.make(db)
        monitor.evaluate(10.0)  # every 3ms read breaches the 1ms target
        frame = Dashboard(db, slo=monitor).render()
        assert "SLO burn (short/long windows)" in frame
        assert "FIRING" in frame
        assert "alerts" in frame
        assert "FIRE    lat-tenant-0 (tenant=tenant-0" in frame

    def test_no_data_state(self):
        db = TimeSeriesDB()
        monitor = self.make(db)
        monitor.evaluate(10.0)
        frame = Dashboard(db, slo=monitor).render()
        assert "no data" in frame
        assert "FIRING" not in frame


class TestLiveTop:
    def test_refresh_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveTop(Dashboard(TimeSeriesDB()), io.StringIO(), refresh=0.0)

    def test_emits_on_refresh_grid(self):
        stream = io.StringIO()
        live = LiveTop(
            Dashboard(populated_tsdb()), stream, refresh=1.0, ansi=False
        )
        for t in (0.0, 0.25, 0.5, 1.0, 1.25, 2.0, 2.25):
            live.on_tick(t)
        assert live.frames == 3  # t=0.0, 1.0, 2.0

    def test_ansi_frames_are_prefixed_with_home_clear(self):
        stream = io.StringIO()
        live = LiveTop(Dashboard(populated_tsdb()), stream, refresh=1.0)
        live.emit(1.0)
        live.emit(2.0)
        output = stream.getvalue()
        assert output.count("\x1b[H\x1b[J") == 2
        assert output.endswith("\n")

    def test_plain_frames_are_blank_line_separated(self):
        stream = io.StringIO()
        live = LiveTop(
            Dashboard(populated_tsdb()), stream, refresh=1.0, ansi=False
        )
        live.emit(1.0)
        live.emit(2.0)
        output = stream.getvalue()
        assert "\x1b" not in output
        assert "\n\nrepro top" in output
