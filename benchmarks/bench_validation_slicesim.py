"""Validation V1: fluid pipeline model vs slice-level discrete simulation.

The headline experiments run on the fluid executor; this bench quantifies
the abstraction error against the slice-level ground truth of Section IV-D
across congested snapshots and all three schemes.
"""

import pytest

from conftest import NODE_COUNT, REPAIR_FLOOR, congested_instants, record
from fig5_common import SCHEMES, make_planner, stripe_nodes_at
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.repair.pipeline import ExecutionConfig
from repro.repair.slicesim import fluid_estimate, simulate_slices
from repro.units import kib, mib


@pytest.mark.benchmark(group="validation-slicesim")
def test_fluid_model_tracks_slice_level(benchmark, workload_traces):
    trace = workload_traces["TPC-DS"]
    config = ExecutionConfig(chunk_size=mib(64), slice_size=kib(32))

    def run():
        deviations = {scheme: [] for scheme in SCHEMES}
        for index, instant in enumerate(congested_instants(trace, 20, 3)):
            snapshot = BandwidthSnapshot(
                up={
                    n: max(
                        float(trace.available_up()[n, int(instant)]),
                        REPAIR_FLOOR,
                    )
                    for n in range(NODE_COUNT)
                },
                down={
                    n: max(
                        float(trace.available_down()[n, int(instant)]),
                        REPAIR_FLOOR,
                    )
                    for n in range(NODE_COUNT)
                },
            )
            requestor, survivors = stripe_nodes_at(
                trace, instant, 9, seed=index
            )
            for scheme in SCHEMES:
                plan = make_planner(scheme).plan(
                    snapshot, requestor, survivors, 6
                )
                discrete = simulate_slices(plan.tree, snapshot, config)
                fluid = fluid_estimate(plan.tree, snapshot, config)
                deviations[scheme].append(discrete / fluid - 1.0)
        return deviations

    deviations = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Validation V1: slice-level vs fluid transfer time, 20 congested "
        "TPC-DS snapshots, (9,6), 64 MiB / 32 KiB"
    ]
    for scheme, values in deviations.items():
        mean = sum(values) / len(values)
        worst = max(values, key=abs)
        lines.append(
            f"  {scheme:>12}: mean deviation {100 * mean:+.2f}%, "
            f"worst {100 * worst:+.2f}%"
        )
        # The fluid model may only *underestimate* slightly (perfect
        # overlap) and must stay within 15% of the ground truth.
        assert all(-0.02 <= v <= 0.15 for v in values), scheme
    record("validation_slicesim", lines)
    benchmark.extra_info["mean_deviation"] = {
        scheme: round(sum(v) / len(v), 4) for scheme, v in deviations.items()
    }
