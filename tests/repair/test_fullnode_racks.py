"""Integration: full-node repair over the rack topology.

The orchestrators never reference StarNetwork specifics, so a RackNetwork
must drop in — and the oversubscribed core must actually constrain the
makespan.
"""

import numpy as np
import pytest

from repro.core import PivotRepairPlanner
from repro.ec import RSCode, place_stripes
from repro.network.hierarchical import RackNetwork
from repro.repair import ExecutionConfig, repair_full_node
from repro.repair.fullnode import repair_full_node_adaptive

NODE_COUNT = 12  # 3 racks x 4 nodes
CODE = RSCode(6, 4)


def rack_network(rack_capacity):
    return RackNetwork.uniform(3, 4, 1000.0, rack_capacity)


def make_stripes(failed_node, count=6, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    start_id = 0
    while len(out) < count:
        batch = place_stripes(16, CODE, NODE_COUNT, rng, start_id=start_id)
        start_id += 16
        out.extend(
            s for s in batch if s.chunk_on_node(failed_node) is not None
        )
    return out[:count]


def small_config():
    return ExecutionConfig(
        chunk_size=20_000, slice_size=1000, per_slice_overhead=0.0
    )


class TestFullNodeOnRacks:
    def test_repairs_complete_on_rack_topology(self):
        stripes = make_stripes(0)
        result = repair_full_node(
            PivotRepairPlanner(), rack_network(4000.0), stripes, 0,
            concurrency=2, config=small_config(),
        )
        assert result.chunks_repaired == 6
        assert result.total_seconds > 0

    def test_adaptive_works_on_rack_topology(self):
        stripes = make_stripes(0, seed=1)
        result = repair_full_node_adaptive(
            PivotRepairPlanner(), rack_network(4000.0), stripes, 0,
            config=small_config(),
        )
        assert result.chunks_repaired == 6

    def test_oversubscribed_core_slows_repair(self):
        stripes = make_stripes(5, count=8, seed=2)
        fat = repair_full_node(
            PivotRepairPlanner(), rack_network(8000.0), stripes, 5,
            concurrency=4, config=small_config(),
        )
        thin = repair_full_node(
            PivotRepairPlanner(), rack_network(200.0), stripes, 5,
            concurrency=4, config=small_config(),
        )
        assert thin.total_seconds > fat.total_seconds

    def test_residual_snapshot_covers_rack_nodes(self):
        # residual_snapshot must enumerate RackNetwork nodes correctly.
        from repro.network.simulator import FluidSimulator
        from repro.repair.fullnode import residual_snapshot

        net = rack_network(4000.0)
        sim = FluidSimulator(net)
        sim.submit_bulk([(0, 4, 1e6)])  # cross-rack background
        view = residual_snapshot(net, sim)
        assert set(view.up) == set(range(NODE_COUNT))
        assert view.up_of(0) < 1000.0  # uplink usage subtracted
        assert view.down_of(4) < 1000.0
