"""Observability: structured event tracing, metrics, timeline export.

Three pieces, all dependency-free and usable independently:

* :mod:`repro.obs.tracer` — a structured event tracer.  Modules accept a
  :class:`Tracer` and emit *instant* events and *spans* carrying simulated
  time (and optionally wall time).  The default :data:`NULL_TRACER` is a
  zero-cost no-op: hot paths guard on ``tracer.enabled`` and never build
  an event payload when tracing is off.
* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  histograms with percentile summaries).  Repair entry points fill one
  per run and expose its snapshot as the ``telemetry`` field of
  :class:`~repro.repair.metrics.RepairResult` /
  :class:`~repro.repair.metrics.FullNodeResult`.
* :mod:`repro.obs.export` — exporters: JSONL (one event per line,
  deterministic by default) and Chrome ``trace_event`` JSON loadable in
  ``chrome://tracing`` / Perfetto, one track per node plus planner and
  scheduler tracks.

On top of those, run analysis:

* :mod:`repro.obs.sampler` — the **flight recorder**, a periodic sampler
  recording per-node link rates/utilization, per-class aggregate rates,
  and the governor cap as aligned time series (off by default);
* :mod:`repro.obs.analysis` — **bottleneck attribution**: decompose each
  repair's wall time into ideal / contention / governor / stall against
  an oracle ``B_min``, with invariant checks (``repro explain``);
* :mod:`repro.obs.critpath` — **causal critical paths**: rebuild the
  span DAG from ``parent_id``/``links``, recover the exact chain of
  intervals bounding each repair's makespan (tiling checked to 1e-9),
  and attribute its seconds per category and per tenant
  (``repro critpath``);
* :mod:`repro.obs.report` — a self-contained single-file HTML dashboard
  for a diagnosed run (``repro report --html``).

And the streaming telemetry plane (see ``docs/telemetry.md``):

* :mod:`repro.obs.timeseries` — a ring-buffered **simulated-time TSDB**
  fed by the flight recorder, loadgen engine and repair orchestrators,
  with windowed rate/avg/max/percentile queries, JSONL round-trip and
  Prometheus text exposition;
* :mod:`repro.obs.slo` — per-tenant **SLO burn-rate monitoring**
  (multi-window, Google SRE style) with alert hooks the QoS governor
  and hedging health monitor consume;
* :mod:`repro.obs.promtext` — Prometheus exposition rendering and a
  pure-python format lint;
* :mod:`repro.obs.top` — the ``repro top`` live terminal dashboard.
"""

from repro.obs.analysis import (
    BottleneckLink,
    RepairDiagnosis,
    RunDiagnosis,
    diagnose,
)
from repro.obs.critpath import (
    CritPathReport,
    PathSegment,
    RepairPath,
    critical_paths,
    crosscheck,
)
from repro.obs.export import (
    events_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_labels,
)
from repro.obs.promtext import lint as prometheus_lint
from repro.obs.promtext import render_exposition
from repro.obs.report import render_html_report
from repro.obs.sampler import FlightRecorder, Sample, samples_from_jsonl
from repro.obs.slo import SLOAlert, SLOMonitor, SLOSpec, SLOStatus
from repro.obs.timeseries import Series, TimeSeriesDB
from repro.obs.top import Dashboard, LiveTop
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "BottleneckLink",
    "Counter",
    "CritPathReport",
    "Dashboard",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LiveTop",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PathSegment",
    "RepairDiagnosis",
    "RepairPath",
    "RunDiagnosis",
    "SLOAlert",
    "SLOMonitor",
    "SLOSpec",
    "SLOStatus",
    "Sample",
    "Series",
    "TimeSeriesDB",
    "TraceEvent",
    "Tracer",
    "critical_paths",
    "crosscheck",
    "diagnose",
    "events_from_jsonl",
    "prometheus_lint",
    "render_exposition",
    "render_html_report",
    "render_labels",
    "samples_from_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "write_trace",
]
