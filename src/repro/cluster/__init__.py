"""Cluster substrate: Master, DataNodes, placement, failure injection."""

from repro.cluster.master import Cluster, DegradedReadOutcome
from repro.cluster.node import DataNode

__all__ = ["Cluster", "DataNode", "DegradedReadOutcome"]
