"""Slice-level pipelined execution model.

A pipelined repair moves a chunk of ``C`` bytes as ``S = ceil(C / s)`` slices
of size ``s`` through a tree of depth ``d``.  In steady state every edge
streams at the task rate ``r``; the pipeline additionally pays

* a **fill cost** — the first slice crosses ``d`` hops before results start
  arriving at the requestor, adding roughly ``(d - 1) * s`` extra bytes of
  serialised transfer per edge, and
* a **per-slice overhead** — each slice costs a small fixed handling time
  (RPC dispatch, GF(2^8) multiply-XOR that is not perfectly overlapped).

With 64 MiB chunks and 32 KiB slices both corrections are tiny relative to
``C / r``, which is why the paper's Experiment 4 finds repair time flat in
the slice size; they matter at the extremes of the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.chunk import DEFAULT_CHUNK_SIZE, DEFAULT_SLICE_SIZE, slice_count
from repro.exceptions import PlanningError


@dataclass(frozen=True)
class ExecutionConfig:
    """Parameters of a repair execution."""

    chunk_size: int = DEFAULT_CHUNK_SIZE
    slice_size: int = DEFAULT_SLICE_SIZE
    #: Fixed cost per slice (seconds) not hidden by pipelining.
    per_slice_overhead: float = 2e-6
    #: Fluid-simulator allocation engine ("reference" or "fast");
    #: ``None`` uses :data:`repro.network.simulator.DEFAULT_ENGINE`.
    #: The engines are bit-identical on every observable, so this only
    #: selects a performance profile (see docs/fluid_engine.md).
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise PlanningError("chunk size must be positive")
        if self.slice_size <= 0:
            raise PlanningError("slice size must be positive")
        if self.slice_size > self.chunk_size:
            object.__setattr__(self, "slice_size", self.chunk_size)
        if self.per_slice_overhead < 0:
            raise PlanningError("per-slice overhead cannot be negative")
        if self.engine is not None and self.engine not in (
            "reference", "fast"
        ):
            raise PlanningError(
                f"unknown engine {self.engine!r}; "
                "expected 'reference' or 'fast'"
            )

    @property
    def slices(self) -> int:
        return slice_count(self.chunk_size, self.slice_size)


def pipeline_bytes_per_edge(config: ExecutionConfig, depth: int) -> float:
    """Bytes each tree edge effectively carries, including pipeline fill."""
    if depth < 1:
        raise PlanningError(f"tree depth must be >= 1, got {depth}")
    return config.chunk_size + (depth - 1) * config.slice_size


def remaining_bytes_per_edge(
    config: ExecutionConfig, depth: int, start_slice: int
) -> float:
    """Bytes each edge carries when resuming from a slice watermark.

    A repair resuming at ``start_slice`` (the first slice not yet verified
    at the requestor) only streams the remaining ``S - start_slice``
    slices, but the new tree still pays its own pipeline fill of
    ``(depth - 1)`` slices.  ``start_slice == 0`` is exactly
    :func:`pipeline_bytes_per_edge`.
    """
    if depth < 1:
        raise PlanningError(f"tree depth must be >= 1, got {depth}")
    if not 0 <= start_slice < config.slices:
        raise PlanningError(
            f"start_slice must be in [0, {config.slices}), got {start_slice}"
        )
    remaining = config.chunk_size - start_slice * config.slice_size
    return remaining + (depth - 1) * config.slice_size


def pipeline_overhead_seconds(config: ExecutionConfig) -> float:
    """Serial per-slice handling cost over the whole chunk."""
    return config.slices * config.per_slice_overhead


def ideal_transfer_seconds(
    config: ExecutionConfig, depth: int, bmin: float
) -> float:
    """Closed-form transfer time when bandwidth is constant.

    Useful for sanity checks against the fluid simulation.
    """
    if bmin <= 0:
        raise PlanningError("bottleneck bandwidth must be positive")
    return (
        pipeline_bytes_per_edge(config, depth) / bmin
        + pipeline_overhead_seconds(config)
    )
