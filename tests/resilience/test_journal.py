"""Property and unit tests for the append-only repair journal."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import JournalError, JournalRecord, RepairJournal

# JSON-representable payload values (floats finite: NaN round-trips as a
# parse error, infinity is not valid JSON).
_values = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
_payloads = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10
    ).filter(lambda key: key != "t"),  # "t" is append()'s own argument
    _values,
    max_size=5,
)


class TestRoundTrip:
    @given(
        seq=st.integers(min_value=0, max_value=2**31),
        t=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        kind=st.sampled_from(
            ["task_start", "progress", "attempt_failed", "hedge_launch"]
        ),
        data=_payloads,
    )
    @settings(max_examples=60, deadline=None)
    def test_record_json_round_trip(self, seq, t, kind, data):
        record = JournalRecord(seq=seq, t=t, kind=kind, data=data)
        back = JournalRecord.from_json(record.to_json())
        assert back == record
        # Deterministic serialisation: same record, same bytes.
        assert back.to_json() == record.to_json()

    @given(data=_payloads)
    @settings(max_examples=30, deadline=None)
    def test_file_round_trip(self, tmp_path_factory, data):
        path = tmp_path_factory.mktemp("journal") / "j.jsonl"
        with RepairJournal(path) as journal:
            journal.append("task_start", t=1.5, **data)
            journal.append("progress", t=2.5, stripe=1, watermark=7)
        loaded = RepairJournal.load(path)
        assert loaded.records == journal.records
        loaded.close()

    def test_malformed_record_raises(self):
        with pytest.raises(JournalError):
            JournalRecord.from_json("not json")
        with pytest.raises(JournalError):
            JournalRecord.from_json('{"seq": 0}')


class TestJournal:
    def test_deterministic_bytes(self, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            with RepairJournal(path) as journal:
                journal.append("run_config", n=6, k=4, seed=3)
                journal.append("task_start", t=0.5, stripe=0, requestor=2)
                journal.append("progress", t=1.0, stripe=0, watermark=40)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_in_memory_journal_has_no_file(self):
        journal = RepairJournal()
        journal.append("task_start", stripe=0)
        assert journal.path is None
        assert len(journal) == 1
        journal.close()

    def test_fsync_barriers(self, tmp_path):
        with RepairJournal(tmp_path / "j.jsonl", fsync_interval=2) as j:
            for i in range(5):
                j.append("progress", stripe=0, watermark=i)
            assert j.fsyncs == 2  # after appends 2 and 4
        assert j.fsyncs == 3  # close() adds the tail barrier

    def test_fsync_interval_validated(self):
        with pytest.raises(JournalError):
            RepairJournal(fsync_interval=0)

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(JournalError):
            RepairJournal.load(tmp_path / "absent.jsonl")

    def test_load_continues_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RepairJournal(path) as journal:
            journal.append("task_start", stripe=0)
            journal.append("task_done", stripe=0)
        with RepairJournal.load(path) as loaded:
            record = loaded.append("task_start", stripe=1)
            assert record.seq == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1, 2]

    def test_queries(self):
        journal = RepairJournal()
        journal.append("run_config", n=6, k=4)
        journal.append("task_start", t=0.0, stripe=0, requestor=3)
        journal.append("progress", t=1.0, stripe=0, watermark=10,
                       requestor=3)
        journal.append("progress", t=2.0, stripe=0, watermark=25,
                       requestor=3)
        journal.append("task_done", t=3.0, stripe=0)
        journal.append("chunk_adopted", t=3.0, stripe=0, requestor=3)
        assert journal.run_config() == {"n": 6, "k": 4}
        assert journal.watermark(0) == (25, 3)  # last record wins
        assert journal.watermark(99) is None
        assert journal.done_stripes() == {0}
        assert journal.adopted_stripes() == {0}
        assert journal.last("progress").data["watermark"] == 25
        assert len(journal.all("progress")) == 2
