"""Figure 6 parameter sweeps (Experiments 4 and 5).

Both sweeps use a fixed heterogeneous bandwidth situation (the paper: "a
fixed bandwidth situation") shaped like the motivating Figure 3: a few
congested links, several pivots, one strong requestor.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.single_chunk import SCHEMES, make_planner
from repro.network.topology import StarNetwork
from repro.repair import ExecutionConfig, repair_single_chunk
from repro.units import kib, mbps, mib

#: Figure 6(a) slice sizes (KiB): 2 KiB .. 1024 KiB.
SLICE_KIB: list[int] = [2, 8, 32, 128, 512, 1024]

#: Figure 6(b) chunk sizes (MiB): 8 .. 128 MiB.
CHUNK_MIB: list[int] = [8, 16, 32, 64, 128]

#: The fixed bandwidth situation, Mb/s per node (index 0 = requestor).
FIXED_UPS = [980, 750, 500, 150, 500, 500, 700, 300, 900, 400]
FIXED_DOWNS = [980, 100, 130, 1000, 200, 900, 650, 850, 250, 750]


def fixed_network() -> StarNetwork:
    """The sweep's static network."""
    return StarNetwork.constant(
        [mbps(u) for u in FIXED_UPS], [mbps(d) for d in FIXED_DOWNS]
    )


def run_slice_size_sweep(
    slice_kib: Sequence[int] = tuple(SLICE_KIB),
    chunk_mib: float = 64,
    k: int = 4,
) -> dict[int, dict[str, float]]:
    """Figure 6(a): total repair seconds per slice size per scheme."""
    network = fixed_network()
    candidates = list(range(1, len(FIXED_UPS)))
    results: dict[int, dict[str, float]] = {}
    for size in slice_kib:
        config = ExecutionConfig(
            chunk_size=mib(chunk_mib), slice_size=kib(size)
        )
        results[size] = {
            scheme: repair_single_chunk(
                make_planner(scheme), network, 0, candidates, k,
                config=config,
            ).total_seconds
            for scheme in SCHEMES
        }
    return results


def run_chunk_size_sweep(
    chunk_mib: Sequence[int] = tuple(CHUNK_MIB),
    slice_kib: float = 32,
    k: int = 4,
) -> dict[int, dict[str, float]]:
    """Figure 6(b): total repair seconds per chunk size per scheme."""
    network = fixed_network()
    candidates = list(range(1, len(FIXED_UPS)))
    results: dict[int, dict[str, float]] = {}
    for size in chunk_mib:
        config = ExecutionConfig(
            chunk_size=mib(size), slice_size=kib(slice_kib)
        )
        results[size] = {
            scheme: repair_single_chunk(
                make_planner(scheme), network, 0, candidates, k,
                config=config,
            ).total_seconds
            for scheme in SCHEMES
        }
    return results
