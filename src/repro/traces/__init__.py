"""Workload traces: synthetic generators and measurement analysis."""

from repro.traces.analysis import (
    CV_THRESHOLD,
    TABLE1_THRESHOLDS,
    Table1Row,
    congested_seconds,
    congestion_episode_stats,
    cv_per_second,
    fig2_series,
    heterogeneous_congestion_fraction,
    pivot_availability,
    table1,
    usage_rates,
)
from repro.traces.replay import (
    ForegroundFlow,
    ForegroundReplay,
    competition_network,
    repair_under_competition,
    synthesize_flows,
)
from repro.traces.generators import (
    PROFILES,
    SWIM,
    TPC_DS,
    TPC_H,
    WorkloadProfile,
    generate_all,
    generate_trace,
)
from repro.traces.workload import DEFAULT_CAPACITY, WorkloadTrace

__all__ = [
    "CV_THRESHOLD",
    "DEFAULT_CAPACITY",
    "PROFILES",
    "SWIM",
    "TABLE1_THRESHOLDS",
    "TPC_DS",
    "TPC_H",
    "Table1Row",
    "WorkloadProfile",
    "WorkloadTrace",
    "ForegroundFlow",
    "ForegroundReplay",
    "competition_network",
    "congested_seconds",
    "congestion_episode_stats",
    "repair_under_competition",
    "synthesize_flows",
    "cv_per_second",
    "fig2_series",
    "generate_all",
    "generate_trace",
    "heterogeneous_congestion_fraction",
    "pivot_availability",
    "table1",
    "usage_rates",
]
