"""Tests for the Monte-Carlo driver: pairing, determinism, artifacts."""

import json
import math

import pytest

from repro.exceptions import LifetimeError
from repro.lifetime import (
    FixedDurations,
    LifetimeConfig,
    default_processes,
    run_lifetime,
)
from repro.obs import MetricsRegistry, TimeSeriesDB
from repro.obs.tracer import Tracer

SMALL = LifetimeConfig(
    years=2, runs=3, seed=11, schemes=("pivot", "conventional"),
    stripes=16, disk_mttf_days=30.0, repair_streams=1,
)

# Fixed analytic durations keep these tests independent of the fluid
# simulator while preserving the pivot-vs-conventional contrast.
DURATIONS = FixedDurations({"pivot": 3600.0, "conventional": 4 * 3600.0})


@pytest.fixture(scope="module")
def report():
    return run_lifetime(SMALL, durations=DURATIONS)


class TestDeterminism:
    def test_digest_is_reproducible(self, report):
        again = run_lifetime(SMALL, durations=DURATIONS)
        assert again.digest == report.digest
        for scheme in SMALL.schemes:
            assert (
                again.schemes[scheme].runs == report.schemes[scheme].runs
            )

    def test_different_seed_changes_digest(self, report):
        other = run_lifetime(
            LifetimeConfig(**{**SMALL.to_dict(), "seed": 12}),
            durations=DURATIONS,
        )
        assert other.digest != report.digest


class TestPairedDesign:
    def test_equal_speed_schemes_are_bit_identical(self):
        # The outage timeline is scheme-independent, so two schemes that
        # repair at the same fixed speed must produce identical runs —
        # any daylight between them would mean the failure history leaks
        # scheme state.
        report = run_lifetime(SMALL, durations=FixedDurations(3600.0))
        pivot = report.schemes["pivot"].runs
        conventional = report.schemes["conventional"].runs
        assert pivot == conventional
        assert sum(r["chunk_failures"] for r in pivot) > 0

    def test_scheme_subset_is_stable(self, report):
        # Dropping a scheme must not perturb the remaining scheme's
        # stream (failure schedules and repair draws are per-scheme).
        solo = run_lifetime(
            LifetimeConfig(**{**SMALL.to_dict(), "schemes": ("pivot",)}),
            durations=DURATIONS,
        )
        assert solo.schemes["pivot"].runs == report.schemes["pivot"].runs


class TestSummary:
    def test_slower_repairs_never_lose_less(self, report):
        pivot = report.schemes["pivot"].total_losses
        conventional = report.schemes["conventional"].total_losses
        assert conventional >= pivot

    def test_ci_brackets_mean(self, report):
        for summary in report.schemes.values():
            low, high = summary.loss_ci95
            assert low <= summary.mean_losses <= high

    def test_loss_free_scheme_reports_infinite_mttdl(self):
        # Only transient machine outages: nothing is ever destroyed.
        loss_free = run_lifetime(
            LifetimeConfig(
                years=1, runs=2, seed=1, schemes=("pivot",),
                stripes=2, disk_mttf_days=0.0, machine_mttf_days=30.0,
                rack_mttf_days=0.0,
            ),
            durations=FixedDurations({"pivot": 60.0}),
        )
        summary = loss_free.schemes["pivot"]
        assert summary.total_losses == 0
        assert math.isinf(summary.mttdl_years(1.0))
        assert math.isinf(summary.durability_nines(1.0, 2))
        payload = loss_free.summary()["schemes"]["pivot"]
        assert payload["mttdl_years"] is None
        assert payload["durability_nines"] is None

    def test_summary_payload_shape(self, report):
        payload = report.summary()
        assert payload["digest"] == report.digest
        assert payload["config"]["seed"] == 11
        for scheme in SMALL.schemes:
            entry = payload["schemes"][scheme]
            assert entry["total_data_loss_events"] >= 0
            assert len(entry["loss_ci95"]) == 2


class TestArtifactsAndObservability:
    def test_jsonl_artifact(self, tmp_path, report):
        path = tmp_path / "lifetime.jsonl"
        report.write_jsonl(path)
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert lines[0]["kind"] == "summary"
        runs = [line for line in lines if line["kind"] == "run"]
        assert len(runs) == SMALL.runs * len(SMALL.schemes)
        assert {r["scheme"] for r in runs} == set(SMALL.schemes)

    def test_registry_and_tsdb_and_tracer(self):
        registry = MetricsRegistry()
        tsdb = TimeSeriesDB()
        tracer = Tracer()
        report = run_lifetime(
            SMALL, durations=DURATIONS, registry=registry, tsdb=tsdb,
            tracer=tracer,
        )
        families = registry.snapshot()["families"]
        assert "lifetime_data_loss_events_total" in families
        assert "lifetime_repairs_completed_total" in families
        losses = report.schemes["conventional"].total_losses
        if losses:
            assert "lifetime_mttdl_years" in families
            assert len(tsdb) > 0
        names = {event.name for event in tracer.events}
        assert "lifetime.run" in names
        if losses:
            assert "lifetime.loss" in names


class TestConfigValidation:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(LifetimeError):
            LifetimeConfig(schemes=("pivot", "raid"))

    def test_rejects_small_cluster(self):
        with pytest.raises(LifetimeError):
            LifetimeConfig(machines=4, n=6, k=4)

    def test_rejects_all_layers_disabled(self):
        config = LifetimeConfig(
            disk_mttf_days=0.0, machine_mttf_days=0.0, rack_mttf_days=0.0
        )
        with pytest.raises(LifetimeError):
            default_processes(config)

    def test_duration_scale(self):
        config = LifetimeConfig(data_per_chunk_gib=64.0)
        assert config.duration_scale == pytest.approx(1024.0)

    def test_horizon(self):
        config = LifetimeConfig(years=2.0)
        assert config.horizon == pytest.approx(2 * 365 * 86_400.0)
