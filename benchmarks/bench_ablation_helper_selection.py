"""Ablation A3: what pivot selection by theo(.) buys.

Compares three helper-selection policies under the same tree-construction
machinery on congested snapshots:

* PivotRepair (top-k theo + insert + replace, Algorithm 1),
* random helper subset with Algorithm 1's inserting over it,
* RP's bandwidth-oblivious chain (reference point).

Shows that both the *selection* (which nodes) and the *shape* (tree vs
chain) contribute to the B_min advantage.
"""

import numpy as np
import pytest

from conftest import NODE_COUNT, congested_instants, record
from fig5_common import stripe_nodes_at
from repro.baselines import RPPlanner
from repro.core import PivotRepairPlanner
from repro.core.algorithm import insert_pivots
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.tree import RepairTree
from repro.units import to_mbps


def random_subset_tree(snapshot, requestor, candidates, k, rng):
    subset = [int(x) for x in rng.choice(candidates, size=k, replace=False)]
    # Insert in descending theo order within the random subset.
    subset.sort(key=lambda node: (-snapshot.theo(node), node))
    parents = insert_pivots(snapshot, requestor, subset)
    return RepairTree(requestor, parents)


@pytest.mark.benchmark(group="ablation-helpers")
def test_pivot_selection_matters(benchmark, workload_traces):
    trace = workload_traces["TPC-H"]
    n, k = 9, 6

    def run():
        rng = np.random.default_rng(3)
        sums = {"PivotRepair": 0.0, "random helpers": 0.0, "RP chain": 0.0}
        count = 0
        for index, instant in enumerate(congested_instants(trace, 40, 9)):
            requestor, survivors = stripe_nodes_at(
                trace, instant, n, seed=index + 500
            )
            snapshot = BandwidthSnapshot(
                up={
                    node: float(trace.available_up()[node, int(instant)])
                    for node in range(NODE_COUNT)
                },
                down={
                    node: float(trace.available_down()[node, int(instant)])
                    for node in range(NODE_COUNT)
                },
            )
            pivot = PivotRepairPlanner().plan(snapshot, requestor, survivors, k)
            random_tree = random_subset_tree(
                snapshot, requestor, survivors, k, rng
            )
            rp = RPPlanner().plan(snapshot, requestor, survivors, k)
            sums["PivotRepair"] += pivot.bmin
            sums["random helpers"] += random_tree.bmin(snapshot)
            sums["RP chain"] += rp.bmin
            count += 1
        return {name: total / count for name, total in sums.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation A3: helper selection policy, mean B_min over 40 "
             "congested TPC-H snapshots, (9,6)"]
    for name, value in means.items():
        lines.append(f"  {name:>15}: {to_mbps(value):7.1f} Mb/s")
    record("ablation_helper_selection", lines)

    assert means["PivotRepair"] > means["random helpers"]
    assert means["PivotRepair"] > means["RP chain"]
    benchmark.extra_info["mean_bmin_mbps"] = {
        name: round(to_mbps(value), 1) for name, value in means.items()
    }
