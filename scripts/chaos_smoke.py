"""CI chaos smoke: faulted full-node repair must re-plan and complete.

Runs a seeded full-node repair with a helper crash injected mid-run, for
several seeds, and asserts that every run detected the crash, re-planned
at least one stripe (nonzero ``replans`` counter), and still repaired
every chunk.  Exercises the fault-injection path end to end the way
``repro fullnode --faults`` does.
"""

import sys

import numpy as np

from repro.core import PivotRepairPlanner
from repro.ec import RSCode, place_stripes
from repro.faults import FaultPlan, RetryPolicy
from repro.network.topology import StarNetwork
from repro.repair import repair_full_node
from repro.repair.pipeline import ExecutionConfig

NODE_COUNT = 12
CODE = RSCode(6, 4)


def run(seed: int) -> dict:
    stripes = place_stripes(
        8, CODE, NODE_COUNT, np.random.default_rng(seed)
    )
    failed = stripes[0].placement[0]
    # Crash one holder of the first stripe while repairs are in flight:
    # with (6, 4) and one crash every stripe keeps >= k live holders, so
    # the run must re-plan rather than abort.
    victim = next(n for n in stripes[0].placement if n != failed)
    spec = f"crash:{victim}@0.3"
    network = StarNetwork.constant(
        [1e8 + i * 3e6 for i in range(NODE_COUNT)],
        [1e8 + i * 5e6 for i in range(NODE_COUNT)],
    )
    result = repair_full_node(
        PivotRepairPlanner(), network, stripes, failed,
        config=ExecutionConfig(chunk_size=64 * 1024 * 1024),
        faults=FaultPlan.from_spec(spec),
        retry_policy=RetryPolicy(),
    )
    counters = result.telemetry["counters"]
    return {
        "seed": seed,
        "replans": int(counters.get("replans", 0)),
        "detections": int(counters.get("fault_detections", 0)),
        "repaired": result.chunks_repaired,
        "failed": result.chunks_failed,
    }


def main() -> int:
    seeds = [int(s) for s in sys.argv[1:]] or [1, 2, 3]
    bad = False
    for seed in seeds:
        stats = run(seed)
        print(
            "seed {seed}: {replans} replans, {detections} detections, "
            "{repaired} repaired, {failed} failed".format(**stats)
        )
        if stats["replans"] < 1 or stats["failed"] > 0:
            bad = True
    if bad:
        print("chaos smoke FAILED: expected >=1 replan and 0 failures")
        return 1
    print("chaos smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
