"""Seeded open-loop request generators.

Arrivals follow a (possibly modulated) Poisson process — the open-loop
model of client traffic: request times do not depend on completions, so a
slow system builds queues instead of silently back-pressuring the load.
Object popularity is Zipfian over stripes (hot storage concentrates reads
on few objects), and the arrival *rate* can be modulated three ways:

* ``"none"`` — homogeneous Poisson at ``arrival_rate``;
* ``"diurnal"`` — a sinusoid around the base rate (day/night cycles
  compressed to ``diurnal_period`` seconds);
* ``"bursts"`` — Poisson burst episodes multiply the base rate (flash
  crowds).

Modulated processes are sampled by thinning (Lewis & Shedler): candidate
arrivals are drawn at the peak rate and accepted with probability
``rate(t) / peak``, which is exact for any bounded rate function.  A
:func:`rate_profile_from_trace` helper converts a measured
:class:`~repro.traces.workload.WorkloadTrace` into a modulation profile so
foreground load can follow, e.g., the TPC-DS intensity shape while the
flows themselves compete for full link capacity.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.seeding import rng_from
from repro.ec.stripe import Stripe
from repro.exceptions import LoadGenError
from repro.loadgen.requests import READ, WRITE, ClientRequest
from repro.traces.workload import WorkloadTrace
from repro.units import mib

MODULATIONS = ("none", "diurnal", "bursts", "trace")


@dataclass(frozen=True)
class LoadProfile:
    """Parameters of one synthetic foreground workload."""

    name: str = "synthetic"
    #: Mean request arrivals per second (before modulation).
    arrival_rate: float = 50.0
    #: Length of the generated request stream, seconds.
    duration: float = 60.0
    #: Fraction of requests that are reads (the rest are writes).
    read_fraction: float = 0.9
    #: Bytes moved per request.
    request_size: int = mib(1)
    #: Zipf exponent of object popularity over stripes (0 = uniform).
    zipf_s: float = 0.9
    #: Arrival-rate modulation: none / diurnal / bursts / trace.
    modulation: str = "none"
    diurnal_period: float = 120.0
    #: Relative swing of the diurnal sinusoid, in [0, 1).
    diurnal_amplitude: float = 0.5
    #: Burst episodes per second and their mean duration (seconds).
    burst_rate: float = 0.02
    burst_duration: float = 5.0
    #: Rate multiplier inside a burst episode.
    burst_multiplier: float = 4.0
    #: Tenant names requests are attributed to (telemetry/SLO labels).
    #: Empty = single anonymous tenant ("default"); with one name every
    #: request carries it; with several, each request draws a tenant
    #: uniformly.  Zero or one tenant consumes no extra randomness, so
    #: existing seeded streams are byte-identical.
    tenants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise LoadGenError("arrival rate cannot be negative")
        if self.duration <= 0:
            raise LoadGenError("duration must be positive")
        if not 0 <= self.read_fraction <= 1:
            raise LoadGenError("read fraction must be in [0, 1]")
        if self.request_size <= 0:
            raise LoadGenError("request size must be positive")
        if self.zipf_s < 0:
            raise LoadGenError("zipf exponent cannot be negative")
        if self.modulation not in MODULATIONS:
            raise LoadGenError(
                f"unknown modulation {self.modulation!r}; "
                f"expected one of {MODULATIONS}"
            )
        if not 0 <= self.diurnal_amplitude < 1:
            raise LoadGenError("diurnal amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise LoadGenError("diurnal period must be positive")
        if self.burst_rate < 0 or self.burst_duration <= 0:
            raise LoadGenError("bad burst parameters")
        if self.burst_multiplier < 1:
            raise LoadGenError("burst multiplier must be >= 1")
        if len(set(self.tenants)) != len(self.tenants) or any(
            not name for name in self.tenants
        ):
            raise LoadGenError("tenant names must be unique and non-empty")


def zipf_weights(count: int, s: float) -> np.ndarray:
    """Normalised Zipf(s) popularity over ``count`` ranked objects."""
    if count < 1:
        raise LoadGenError("need at least one object")
    weights = 1.0 / np.arange(1, count + 1, dtype=float) ** s
    return weights / weights.sum()


def rate_profile_from_trace(trace: WorkloadTrace) -> np.ndarray:
    """Per-second arrival-rate multipliers following a measured trace.

    The cluster-mean used node bandwidth, normalised to mean 1.0 (so the
    profile modulates shape, not volume) and floored at 0.05 (quiet
    seconds still see trickle traffic).
    """
    mean_used = trace.used_node_bandwidth().mean(axis=0)
    base = mean_used.mean()
    if base <= 0:
        return np.ones_like(mean_used)
    return np.clip(mean_used / base, 0.05, None)


def _modulation(
    profile: LoadProfile,
    rng: np.random.Generator,
    rate_profile: np.ndarray | None,
    profile_interval: float,
):
    """(rate multiplier fn, peak multiplier) for the thinning sampler."""
    if profile.modulation == "none":
        return (lambda t: 1.0), 1.0
    if profile.modulation == "diurnal":
        amplitude = profile.diurnal_amplitude
        omega = 2 * math.pi / profile.diurnal_period

        return (lambda t: 1.0 + amplitude * math.sin(omega * t)), (
            1.0 + amplitude
        )
    if profile.modulation == "bursts":
        episodes = []
        t = 0.0
        while profile.burst_rate > 0:
            t += rng.exponential(1.0 / profile.burst_rate)
            if t >= profile.duration:
                break
            episodes.append(
                (t, t + rng.exponential(profile.burst_duration))
            )

        def bursty(t: float) -> float:
            for start, end in episodes:
                if start <= t < end:
                    return profile.burst_multiplier
            return 1.0

        return bursty, profile.burst_multiplier
    # "trace": follow the supplied per-sample profile.
    if rate_profile is None:
        raise LoadGenError(
            'modulation "trace" needs a rate_profile '
            "(see rate_profile_from_trace)"
        )
    samples = np.asarray(rate_profile, dtype=float)
    if samples.ndim != 1 or not len(samples):
        raise LoadGenError("rate_profile must be a non-empty 1-D array")
    if (samples < 0).any():
        raise LoadGenError("rate_profile multipliers cannot be negative")

    def traced(t: float) -> float:
        index = min(int(t / profile_interval), len(samples) - 1)
        return float(samples[index])

    return traced, float(samples.max())


def generate_requests(
    profile: LoadProfile,
    stripes: Sequence[Stripe],
    node_count: int,
    seed: int | np.random.Generator = 0,
    rate_profile: np.ndarray | None = None,
    profile_interval: float = 1.0,
) -> list[ClientRequest]:
    """Generate a seeded, time-ordered foreground request stream.

    Reads target a Zipf-popular stripe's data chunk from a uniformly
    random client node (never the chunk's holder — that read is local and
    moves no network bytes); writes store a fresh object across a
    stripe's placement.  Deterministic for a given seed.  ``seed`` is an
    integer (historical streams, unchanged) or a child generator spawned
    from a composite run's root seed
    (:func:`repro.core.seeding.spawn_rng`).
    """
    if not stripes:
        raise LoadGenError("need at least one stripe to address")
    if node_count < 2:
        raise LoadGenError("need at least two nodes for client traffic")
    rng = rng_from(seed)
    rate_of, peak = _modulation(profile, rng, rate_profile, profile_interval)
    weights = zipf_weights(len(stripes), profile.zipf_s)
    ordered = sorted(stripes, key=lambda s: s.stripe_id)
    peak_rate = profile.arrival_rate * peak
    requests: list[ClientRequest] = []
    if peak_rate <= 0:
        return requests
    t = 0.0
    while True:
        t += rng.exponential(1.0 / peak_rate)
        if t >= profile.duration:
            return requests
        if rng.random() * peak > rate_of(t):
            continue  # thinned out: instantaneous rate below peak
        stripe = ordered[int(rng.choice(len(ordered), p=weights))]
        is_read = rng.random() < profile.read_fraction
        if is_read:
            chunk_index = int(rng.integers(0, stripe.code.k))
            holder = stripe.placement[chunk_index]
            client = int(rng.integers(0, node_count))
            while client == holder:
                client = int(rng.integers(0, node_count))
        else:
            chunk_index = 0
            client = int(rng.integers(0, node_count))
        if len(profile.tenants) > 1:
            tenant = profile.tenants[int(rng.integers(0, len(profile.tenants)))]
        elif profile.tenants:
            tenant = profile.tenants[0]
        else:
            tenant = "default"
        requests.append(
            ClientRequest(
                arrival=t,
                kind=READ if is_read else WRITE,
                stripe_id=stripe.stripe_id,
                chunk_index=chunk_index,
                client=client,
                size=profile.request_size,
                tenant=tenant,
            )
        )
