"""Property-based tests for the fluid simulator.

Invariants checked on randomized workloads:

* every submitted task eventually completes on a strictly positive network;
* no task finishes faster than its bytes divided by the fastest link
  (conservation: the simulator cannot create bandwidth);
* a pipelined task is never faster than the same edges as independent bulk
  flows (the common-rate coupling can only constrain);
* adding competing load never makes an existing task finish earlier.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.simulator import FluidSimulator
from repro.network.topology import StarNetwork

NODES = 6

edge = st.tuples(
    st.integers(min_value=0, max_value=NODES - 1),
    st.integers(min_value=0, max_value=NODES - 1),
).filter(lambda e: e[0] != e[1])


def network_from_seed(seed):
    rng = np.random.default_rng(seed)
    ups = [float(rng.integers(10, 1000)) for _ in range(NODES)]
    downs = [float(rng.integers(10, 1000)) for _ in range(NODES)]
    return StarNetwork.constant(ups, downs), ups, downs


class TestCompletionAndConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(
            st.tuples(edge, st.floats(min_value=1, max_value=1e6)),
            min_size=1,
            max_size=6,
        ),
    )
    def test_all_bulk_tasks_complete_no_faster_than_physics(
        self, seed, transfers
    ):
        network, ups, downs = network_from_seed(seed)
        sim = FluidSimulator(network)
        handles = [
            sim.submit_bulk([(src, dst, size)])
            for (src, dst), size in transfers
        ]
        sim.run()
        for handle, ((src, dst), size) in zip(handles, transfers):
            assert handle.done
            best_rate = min(ups[src], downs[dst])
            assert handle.duration >= size / best_rate - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(edge, min_size=1, max_size=5, unique=True),
        st.floats(min_value=10, max_value=1e5),
    )
    def test_pipelined_no_faster_than_bulk(self, seed, edges, size):
        network, _, _ = network_from_seed(seed)
        pipelined_sim = FluidSimulator(network)
        pipelined = pipelined_sim.submit_pipelined(edges, size)
        pipelined_sim.run()
        bulk_sim = FluidSimulator(network)
        bulk = bulk_sim.submit_bulk([(s, d, size) for s, d in edges])
        bulk_sim.run()
        assert pipelined.duration >= bulk.duration - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        edge,
        st.lists(edge, min_size=1, max_size=4),
    )
    def test_competition_never_speeds_a_task_up(
        self, seed, target, competitors
    ):
        network, _, _ = network_from_seed(seed)
        alone_sim = FluidSimulator(network)
        alone = alone_sim.submit_bulk([(target[0], target[1], 1000.0)])
        alone_sim.run()
        busy_sim = FluidSimulator(network)
        watched = busy_sim.submit_bulk([(target[0], target[1], 1000.0)])
        for src, dst in competitors:
            busy_sim.submit_bulk([(src, dst, 1e5)])
        busy_sim.run()
        assert watched.duration >= alone.duration - 1e-6


class TestRepairedPlacementIntegration:
    def test_cluster_placement_updated_after_repairs(self):
        from repro.cluster import Cluster
        from repro.core import BandwidthSnapshot, PivotRepairPlanner
        from repro.ec import RSCode

        cluster = Cluster(12, RSCode(6, 4))
        stripe = cluster.write_random_stripes(
            1, 64, np.random.default_rng(3)
        )[0]
        view = BandwidthSnapshot(
            up={i: 100.0 for i in range(12)},
            down={i: 100.0 for i in range(12)},
        )
        failed = stripe.placement[2]
        cluster.fail_node(failed)
        holders = set(stripe.placement)
        spare = next(
            n for n in range(12) if n not in holders and n != failed
        )
        cluster.repair_stripe(
            PivotRepairPlanner(), view, stripe, [2], {2: spare}
        )
        assert stripe.placement[2] == spare
        # A subsequent failure of the *original* node loses nothing.
        assert stripe.chunk_on_node(failed) is None
        # The relocated chunk participates in future repairs.
        second_failed = stripe.placement[0]
        cluster.fail_node(second_failed)
        spare2 = next(
            n
            for n in range(12)
            if n not in set(stripe.placement) and cluster.nodes[n].alive
        )
        rebuilt = cluster.repair_stripe(
            PivotRepairPlanner(), view, stripe, [0], {0: spare2}
        )
        assert 0 in rebuilt
