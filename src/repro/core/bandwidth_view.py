"""Instantaneous view of per-node available bandwidths.

Planners work on a :class:`BandwidthSnapshot` — the Master's view of every
node's available uplink/downlink bandwidth at planning time (the paper's
Master "generates a repair scheme with the instant bandwidths situation",
Section V-A).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import PlanningError
from repro.network.topology import StarNetwork


@dataclass(frozen=True)
class BandwidthSnapshot:
    """Available up/down bandwidth of every node at one instant."""

    up: Mapping[int, float]
    down: Mapping[int, float]
    time: float = field(default=0.0)

    def __post_init__(self) -> None:
        if set(self.up) != set(self.down):
            raise PlanningError("snapshot up/down node sets differ")
        for node in self.up:
            if self.up[node] < 0 or self.down[node] < 0:
                raise PlanningError(f"negative bandwidth on node {node}")

    @classmethod
    def from_network(
        cls, network: StarNetwork, t: float
    ) -> BandwidthSnapshot:
        """Sample a network's available bandwidths at time ``t``."""
        up = {node: network.up_at(node, t) for node in network.node_ids}
        down = {node: network.down_at(node, t) for node in network.node_ids}
        return cls(up=up, down=down, time=t)

    @property
    def nodes(self) -> list[int]:
        return sorted(self.up)

    def up_of(self, node: int) -> float:
        self._check(node)
        return self.up[node]

    def down_of(self, node: int) -> float:
        self._check(node)
        return self.down[node]

    def theo(self, node: int) -> float:
        """Theoretical available node bandwidth min{up, down} (§IV-B)."""
        return min(self.up_of(node), self.down_of(node))

    def link(self, src: int, dst: int) -> float:
        """Available bandwidth of directed link src -> dst (Figure 3)."""
        if src == dst:
            raise PlanningError(f"self-link on node {src}")
        return min(self.up_of(src), self.down_of(dst))

    def _check(self, node: int) -> None:
        if node not in self.up:
            raise PlanningError(f"node {node} not in snapshot")


@dataclass(frozen=True)
class PairwiseBandwidthSnapshot(BandwidthSnapshot):
    """A snapshot with per-pair link bandwidths on top of node capacities.

    Star topologies decompose every link into the sender's uplink and the
    receiver's downlink; real networks add pairwise effects (cross-switch
    paths, flaky NICs, in-network contention).  ``link_caps[(src, dst)]``
    caps the corresponding directed link below the node-derived value.
    This is the model in which forwarding baselines like SMFRepair [55]
    operate — there, relaying through a third node genuinely can beat a
    slow direct link.
    """

    link_caps: Mapping[tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        for (src, dst), cap in self.link_caps.items():
            if src not in self.up or dst not in self.up:
                raise PlanningError(
                    f"link cap on unknown pair ({src}, {dst})"
                )
            if src == dst:
                raise PlanningError(f"link cap on self-pair ({src}, {src})")
            if cap < 0:
                raise PlanningError(
                    f"negative link cap on ({src}, {dst})"
                )

    def link(self, src: int, dst: int) -> float:
        base = super().link(src, dst)
        return min(base, self.link_caps.get((src, dst), base))
