"""Vectorized, incrementally-updated max-min allocation engine.

The reference allocator (:func:`repro.network.fairness.max_min_allocate`)
recomputes every task's rate from scratch with Python loops on every event
— O(tasks × resources) per event, the hot path ROADMAP item 1 names.  This
module supplies the ``engine="fast"`` replacement:

* :func:`waterfill` — the same water-level progressive filling over numpy
  arrays, saturating every bottleneck of a round at once.  Each round
  performs the *same* IEEE-754 operations as the reference loop
  (one subtract, one divide per resource; an exact integer-valued
  coefficient sum per freeze; one multiply-add per frozen resource), so
  its results are bit-identical, not merely close.
* :class:`IncrementalEngine` — keeps the constraint graph (tasks ↔ link
  resources) registered between events and re-solves only the connected
  components actually perturbed by an arrival, finish, cancellation,
  rate-cap change, or capacity breakpoint.  Untouched components keep
  their piecewise-constant rates.

Bit-identity of the incremental scheme rests on two invariants of the
reference formulation (see the :mod:`repro.network.fairness` docstring):
per-resource accumulators are only ever advanced by that resource's own
users, with exact integer-valued coefficient sums; and a component's tasks
freeze exactly when the global water level meets the component's local
minimum.  A component solved in isolation therefore reproduces, bit for
bit, what a global solve assigns to it.  The differential harness
(``tests/network/test_engine_differential.py``) enforces this at float
tolerance zero.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError

__all__ = [
    "waterfill",
    "vectorized_max_min_allocate",
    "IncrementalEngine",
]


def waterfill(
    indptr: np.ndarray,
    indices: np.ndarray,
    coeffs: np.ndarray,
    capacity: np.ndarray,
    caps: np.ndarray,
) -> np.ndarray:
    """Water-level progressive filling over a CSR usage matrix.

    Task ``i`` consumes columns ``indices[indptr[i]:indptr[i+1]]`` with
    coefficients ``coeffs[indptr[i]:indptr[i+1]]`` per unit of rate.
    ``capacity`` holds one capacity per column; ``caps`` one rate ceiling
    per task (``inf`` = uncapped).  Returns one rate per task.

    Bit-identical to :func:`repro.network.fairness.max_min_allocate` on
    the same instance: every round computes the same saturation levels
    with the same operations, freezes the same exact-equality tie group,
    and advances the same per-column accumulators.
    """
    n = len(indptr) - 1
    m = len(capacity)
    rates = np.zeros(n)
    if n == 0:
        return rates
    entry_rows = np.repeat(np.arange(n), np.diff(indptr))
    positive = coeffs > 0
    has_usage = np.bincount(
        entry_rows, weights=positive, minlength=n
    ) > 0
    active = has_usage & (caps > 0)
    live = active[entry_rows] & positive
    e_rows = entry_rows[live]
    e_cols = indices[live]
    e_coeffs = coeffs[live]
    # Exact: coefficients are integer-valued edge counts, so these sums
    # (and every later freeze_sum) are order-independent and match the
    # reference loop's sequential Python sums bit for bit.
    active_coeff = np.bincount(e_cols, weights=e_coeffs, minlength=m)
    frozen_used = np.zeros(m)
    rounds = 0
    while active.any():
        rounds += 1
        if rounds > n + 1:
            raise SimulationError("progressive filling failed to converge")
        col_live = active_coeff > 0
        levels = np.full(m, np.inf)
        np.divide(
            capacity - frozen_used, active_coeff,
            out=levels, where=col_live,
        )
        level = levels[col_live].min() if col_live.any() else np.inf
        active_caps = caps[active]
        if active_caps.size:
            cap_min = active_caps.min()
            if cap_min < level:
                level = cap_min
        level = float(level)
        if not math.isfinite(level):
            raise SimulationError("unconstrained task in max-min allocation")
        # Freeze the exact-equality tie group: tasks whose cap is the
        # level, plus every active user of a saturated column.
        newly = active & (caps == level)
        col_sat = col_live & (levels == level)
        if col_sat.any():
            hit = np.bincount(
                e_rows[col_sat[e_cols]], minlength=n
            ) > 0
            newly |= active & hit
        if not newly.any():
            raise SimulationError("progressive filling failed to converge")
        assigned = level if level > 0.0 else 0.0
        rates[newly] = assigned
        frozen_entries = newly[e_rows]
        freeze_sum = np.bincount(
            e_cols[frozen_entries],
            weights=e_coeffs[frozen_entries],
            minlength=m,
        )
        frozen_used += freeze_sum * assigned
        active_coeff -= freeze_sum
        active &= ~newly
    return rates


def vectorized_max_min_allocate(
    usages: Sequence[Mapping[object, float]],
    capacities: Mapping[object, float],
    rate_caps: Sequence[float | None] | None = None,
) -> list[float]:
    """Drop-in vectorized equivalent of ``fairness.max_min_allocate``.

    Same signature, same validation errors, bit-identical rates.  Used by
    the property/differential tests and the allocator micro-benchmark;
    the simulator goes through :class:`IncrementalEngine` instead, which
    amortizes the array construction across events.
    """
    for usage in usages:
        for resource, coeff in usage.items():
            if coeff < 0:
                raise SimulationError(
                    f"negative usage coefficient on {resource}"
                )
    if rate_caps is None:
        rate_caps = [None] * len(usages)
    if len(rate_caps) != len(usages):
        raise SimulationError("rate_caps length must match usages")
    for cap in rate_caps:
        if cap is not None and cap < 0:
            raise SimulationError("rate caps cannot be negative")
    col_of: dict = {}
    indptr = [0]
    indices: list[int] = []
    coeffs: list[float] = []
    for usage in usages:
        for resource, coeff in usage.items():
            col = col_of.setdefault(resource, len(col_of))
            indices.append(col)
            coeffs.append(float(coeff))
        indptr.append(len(indices))
    capacity = np.empty(len(col_of))
    for resource, col in col_of.items():
        capacity[col] = capacities.get(resource, 0.0)
    caps = np.array(
        [math.inf if cap is None else float(cap) for cap in rate_caps]
    )
    rates = waterfill(
        np.asarray(indptr),
        np.asarray(indices, dtype=np.intp),
        np.asarray(coeffs),
        capacity,
        caps,
    )
    return [float(rate) for rate in rates]


class IncrementalEngine:
    """Component-local rate recomputation for :class:`FluidSimulator`.

    The simulator registers each allocation entity once; the engine keeps
    the task↔resource constraint graph, a capacity snapshot valid for the
    current piecewise-constant epoch, and a dirty set of perturbed
    entities.  :meth:`ensure` re-solves (via :func:`waterfill`) only the
    connected components reachable from the dirty set — everything else
    keeps its previous, still-bit-exact rate.

    Perturbation sources and who reports them:

    * arrival — :meth:`add_entity` (the new entity is dirty)
    * finish / cancellation — :meth:`remove_entity` (remaining users of
      the departed entity's links are dirty)
    * rate-cap change — :meth:`touch` (the re-capped entity is dirty)
    * capacity breakpoint — detected inside :meth:`ensure` by diffing the
      snapshot against ``network.capacities_at(now)`` whenever ``now``
      leaves the epoch ``[snapshot_time, next_change_after(snapshot_time))``;
      users of every column whose capacity actually changed are dirty.

    A pure time advance inside the epoch with an empty dirty set is a
    no-op: rates are piecewise-constant between events, so there is
    nothing to recompute.  Same-instant submissions batch naturally —
    they accumulate in the dirty set and one :meth:`ensure` solves their
    union of components once.
    """

    def __init__(self, network):
        self.network = network
        self._col_of: dict = {}
        self._resources: list = []
        self._capacity: list[float] = []
        self._users: list[set[int]] = []
        self._entities: dict[int, object] = {}
        self._entity_cols: dict[int, list[int]] = {}
        self._entity_coeffs: dict[int, list[float]] = {}
        self._dirty: set[int] = set()
        self._new_cols: list[int] = []
        self._snapshot_time: float | None = None
        self._snapshot_until: float = -math.inf
        self._snapshot_caps: dict = {}
        #: Waterfill solves actually run — the fast engine's analogue of
        #: ``SimulatorStats.rate_recomputations``.
        self.solves: int = 0
        #: Entities re-rated across all solves (component sizes summed);
        #: ``solved_entities / (solves * len(entities))`` ≪ 1 is the
        #: incremental win becoming visible.
        self.solved_entities: int = 0
        #: Entity ids whose rate actually *moved* in the most recent
        #: :meth:`ensure` solve (most of a component keeps its exact
        #: rate).  Only their tasks can have changed aggregates, so a
        #: tracer need not rescan every live task after a solve.
        self.last_changed: list[int] = []

    # -- registration --------------------------------------------------
    def add_entity(self, entity_id: int, entity) -> None:
        """Register a live entity; it joins the dirty set."""
        cols: list[int] = []
        coeffs: list[float] = []
        for resource, coeff in entity.usage.items():
            if coeff < 0:
                raise SimulationError(
                    f"negative usage coefficient on {resource}"
                )
            if coeff == 0:
                continue
            col = self._col_of.get(resource)
            if col is None:
                col = len(self._resources)
                self._col_of[resource] = col
                self._resources.append(resource)
                self._capacity.append(0.0)
                self._users.append(set())
                self._new_cols.append(col)
            cols.append(col)
            coeffs.append(float(coeff))
            self._users[col].add(entity_id)
        self._entities[entity_id] = entity
        self._entity_cols[entity_id] = cols
        self._entity_coeffs[entity_id] = coeffs
        self._dirty.add(entity_id)

    def remove_entity(self, entity_id: int) -> None:
        """Unregister a finished/cancelled entity; its neighbours become
        dirty (their component lost a competitor)."""
        cols = self._entity_cols.pop(entity_id)
        self._entity_coeffs.pop(entity_id)
        self._entities.pop(entity_id)
        self._dirty.discard(entity_id)
        for col in cols:
            users = self._users[col]
            users.discard(entity_id)
            self._dirty.update(users)

    def touch(self, entity_id: int) -> None:
        """Mark an entity perturbed in place (rate-cap change)."""
        if entity_id in self._entities:
            self._dirty.add(entity_id)

    # -- solving -------------------------------------------------------
    def ensure(self, now: float) -> bool:
        """Bring every registered entity's rate up to date at ``now``.

        Returns True if a waterfill solve actually ran.
        """
        if (
            self._new_cols
            or self._snapshot_time is None
            or now >= self._snapshot_until
        ):
            self._refresh_capacities(now)
        if not self._dirty:
            return False
        component = self._closure()
        if component:
            self.last_changed = []
            self._solve(sorted(component))
            return True
        return False

    def _refresh_capacities(self, now: float) -> None:
        """Re-snapshot capacities; users of changed columns become dirty.

        Within one epoch ``[t0, next_change_after(t0))`` capacities are
        constant (the topology contract the event loop already relies
        on), so the snapshot is refreshed at most once per breakpoint —
        not once per event, which is what makes ``capacities_at`` drop
        out of the per-event cost.
        """
        if self._snapshot_time is None or now >= self._snapshot_until:
            capacities = self.network.capacities_at(now)
            self._snapshot_caps = capacities
            for col, resource in enumerate(self._resources):
                value = capacities.get(resource, 0.0)
                if value != self._capacity[col]:
                    self._capacity[col] = value
                    self._dirty.update(self._users[col])
            self._snapshot_time = now
            self._snapshot_until = self.network.next_change_after(now)
        else:
            # Only new columns need filling, and the epoch is still
            # valid, so its cached capacity dict answers them — no
            # O(nodes) network walk for a mere arrival.
            for col in self._new_cols:
                self._capacity[col] = self._snapshot_caps.get(
                    self._resources[col], 0.0
                )
        self._new_cols.clear()

    def _closure(self) -> set[int]:
        """Connected components of the constraint graph reachable from
        the dirty set (entities linked through shared columns)."""
        todo = [e for e in self._dirty if e in self._entities]
        self._dirty.clear()
        seen_entities = set(todo)
        seen_cols: set[int] = set()
        while todo:
            entity_id = todo.pop()
            for col in self._entity_cols[entity_id]:
                if col in seen_cols:
                    continue
                seen_cols.add(col)
                for other in self._users[col]:
                    if other not in seen_entities:
                        seen_entities.add(other)
                        todo.append(other)
        return seen_entities

    def _solve(self, entity_ids: list[int]) -> None:
        """One waterfill over the gathered components; assign rates.

        Three size tiers, all bit-identical (the equivalence between the
        Python level formulation and the numpy one is the module's core
        invariant, so tier choice is purely a constant-factor decision):

        * one entity — closed form: its level is the minimum of its
          per-resource saturation levels and its cap;
        * small component — the Python reference loop on dict inputs
          (numpy array setup dominates below a few hundred entries);
        * large component — the vectorized :func:`waterfill`.
        """
        if len(entity_ids) == 1:
            self._solve_single(entity_ids[0])
            self.solves += 1
            self.solved_entities += 1
            return
        entries = sum(len(self._entity_cols[e]) for e in entity_ids)
        if entries <= 256:
            self._solve_small(entity_ids)
            self.solves += 1
            self.solved_entities += len(entity_ids)
            return
        local: dict[int, int] = {}
        global_cols: list[int] = []
        indptr = [0]
        indices: list[int] = []
        coeffs: list[float] = []
        caps: list[float] = []
        for entity_id in entity_ids:
            for col, coeff in zip(
                self._entity_cols[entity_id],
                self._entity_coeffs[entity_id],
            ):
                li = local.get(col)
                if li is None:
                    li = len(global_cols)
                    local[col] = li
                    global_cols.append(col)
                indices.append(li)
                coeffs.append(coeff)
            indptr.append(len(indices))
            max_rate = self._entities[entity_id].max_rate
            caps.append(math.inf if max_rate is None else float(max_rate))
        capacity = np.array(
            [self._capacity[col] for col in global_cols]
        )
        rates = waterfill(
            np.asarray(indptr),
            np.asarray(indices, dtype=np.intp),
            np.asarray(coeffs),
            capacity,
            np.asarray(caps),
        )
        for entity_id, rate in zip(entity_ids, rates):
            rate = float(rate)
            entity = self._entities[entity_id]
            if entity.rate != rate:
                entity.rate = rate
                self.last_changed.append(entity_id)
        self.solves += 1
        self.solved_entities += len(entity_ids)

    def _solve_single(self, entity_id: int) -> None:
        """Closed form for a component of one entity.

        Replays the reference loop's single round exactly: level =
        min over resources of ``capacity / coeff`` (``frozen_used`` is
        zero, and ``c - 0.0 == c`` bitwise for the non-negative
        capacities traces produce), capped by ``max_rate``, clamped at
        zero on assignment.
        """
        entity = self._entities[entity_id]
        cols = self._entity_cols[entity_id]
        max_rate = entity.max_rate
        if not cols or (max_rate is not None and max_rate <= 0):
            if entity.rate != 0.0:
                entity.rate = 0.0
                self.last_changed.append(entity_id)
            return
        level = math.inf
        for col, coeff in zip(cols, self._entity_coeffs[entity_id]):
            value = self._capacity[col] / coeff
            if value < level:
                level = value
        if max_rate is not None and max_rate < level:
            level = max_rate
        if not math.isfinite(level):
            raise SimulationError("unconstrained task in max-min allocation")
        rate = level if level > 0.0 else 0.0
        if entity.rate != rate:
            entity.rate = rate
            self.last_changed.append(entity_id)

    def _solve_small(self, entity_ids: list[int]) -> None:
        """Small component: the Python reference loop on dict inputs."""
        from repro.network.fairness import max_min_allocate

        capacities: dict = {}
        for entity_id in entity_ids:
            for col in self._entity_cols[entity_id]:
                capacities[self._resources[col]] = self._capacity[col]
        entities = [self._entities[e] for e in entity_ids]
        rates = max_min_allocate(
            [entity.usage for entity in entities],
            capacities,
            rate_caps=[entity.max_rate for entity in entities],
        )
        for entity_id, entity, rate in zip(entity_ids, entities, rates):
            if entity.rate != rate:
                entity.rate = rate
                self.last_changed.append(entity_id)
