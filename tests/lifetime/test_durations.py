"""Tests for repair-duration models, including fluid-sim calibration."""

import numpy as np
import pytest

from repro.core.seeding import spawn_rng
from repro.exceptions import LifetimeError
from repro.lifetime.durations import (
    CalibratedDurations,
    ExponentialDurations,
    FixedDurations,
    make_scheme_planner,
)


class TestAnalyticModels:
    def test_fixed_scalar_covers_all_schemes(self):
        model = FixedDurations(120.0)
        rng = spawn_rng(0, "d")
        assert model.sample(rng, "pivot") == 120.0
        assert model.sample(rng, "conventional") == 120.0
        assert model.mean("rp") == 120.0

    def test_fixed_per_scheme_mapping(self):
        model = FixedDurations({"pivot": 10.0, "conventional": 40.0})
        rng = spawn_rng(0, "d")
        assert model.sample(rng, "conventional") == 40.0
        with pytest.raises(LifetimeError):
            model.sample(rng, "rp")

    def test_exponential_mean(self):
        model = ExponentialDurations({"pivot": 100.0})
        rng = spawn_rng(1, "d")
        draws = [model.sample(rng, "pivot") for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.1)

    def test_rejects_non_positive(self):
        with pytest.raises(LifetimeError):
            FixedDurations(0.0)


class TestCalibratedModel:
    def test_resamples_scaled_measurements(self):
        model = CalibratedDurations({"pivot": [1.0, 2.0, 3.0]}, scale=10.0)
        rng = spawn_rng(2, "d")
        draws = {model.sample(rng, "pivot") for _ in range(50)}
        assert draws <= {10.0, 20.0, 30.0}
        assert model.mean("pivot") == pytest.approx(20.0)

    def test_unknown_scheme_raises(self):
        model = CalibratedDurations({"pivot": [1.0]})
        with pytest.raises(LifetimeError):
            model.sample(spawn_rng(0, "d"), "conventional")

    def test_rejects_bad_samples(self):
        with pytest.raises(LifetimeError):
            CalibratedDurations({"pivot": []})
        with pytest.raises(LifetimeError):
            CalibratedDurations({"pivot": [1.0, -2.0]})

    def test_calibrate_runs_real_repairs(self):
        model = CalibratedDurations.calibrate(
            workload="TPC-DS", code=(6, 4),
            schemes=("pivot", "conventional"), instants=3,
            trace_duration=300, scale=2.0,
        )
        assert len(model.samples["pivot"]) == 3
        assert len(model.samples["conventional"]) == 3
        # Conventional's star download of k whole chunks through one
        # downlink must be slower than PivotRepair's pipelined tree at
        # congested instants — the durability gap's root cause.
        assert model.mean("conventional") > model.mean("pivot")

    def test_calibrate_is_deterministic(self):
        kwargs = dict(
            workload="TPC-H", code=(6, 4), schemes=("pivot",),
            instants=2, trace_duration=300,
        )
        a = CalibratedDurations.calibrate(**kwargs)
        b = CalibratedDurations.calibrate(**kwargs)
        assert np.array_equal(a.samples["pivot"], b.samples["pivot"])

    def test_calibrate_rejects_unknown_workload(self):
        with pytest.raises(LifetimeError):
            CalibratedDurations.calibrate(workload="nope")


class TestSchemePlanners:
    def test_known_schemes(self):
        assert make_scheme_planner("pivot").name == "PivotRepair"
        assert make_scheme_planner("rp").name == "RP"
        assert make_scheme_planner("conventional").name == "Conventional"

    def test_unknown_scheme(self):
        with pytest.raises(LifetimeError):
            make_scheme_planner("ppt2")
