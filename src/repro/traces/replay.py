"""Foreground traffic as live flows (competition model).

The main experiments model foreground load by *reserving* bandwidth: the
network's available capacity is the edge capacity minus the trace's used
bandwidth (``WorkloadTrace.to_network``).  Real clusters are messier —
repair and application flows *compete* for the same links, and the repair
job's throughput depends on the transport's sharing behaviour.

This module provides the competition model: each second of a workload
trace is replayed as rate-capped background flows inside the fluid
simulator, with the cap equal to the recorded per-node usage.  Repair
tasks then share links with the foreground under max-min fairness.  The
two models bracket reality: reservation is pessimistic for repair (the
foreground always wins), competition is optimistic (fair sharing), and
the ablation bench quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError
from repro.network.simulator import FluidSimulator
from repro.network.topology import StarNetwork
from repro.traces.workload import WorkloadTrace


@dataclass(frozen=True)
class ForegroundFlow:
    """One synthesised application flow."""

    start: float
    end: float
    src: int
    dst: int
    rate: float  # bytes/second the application drives through the flow

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TraceError("flow must have positive duration")
        if self.rate <= 0:
            raise TraceError("flow rate must be positive")
        if self.src == self.dst:
            raise TraceError("flow endpoints must differ")

    @property
    def size(self) -> float:
        return self.rate * (self.end - self.start)


def synthesize_flows(
    trace: WorkloadTrace,
    seed: int = 0,
    resolution: float = 1.0,
) -> list[ForegroundFlow]:
    """Turn a trace's per-node usage marginals into concrete flows.

    Each sample interval pairs uploaders with downloaders greedily (largest
    residual first), emitting one flow per pair whose rate is the smaller
    residual.  The resulting flow set reproduces the trace's per-node
    up/down usage up to the truncation of unmatched residual (a node
    uploading to a client outside the cluster has no in-cluster partner).
    """
    if resolution <= 0:
        raise TraceError("resolution must be positive")
    rng = np.random.default_rng(seed)
    flows: list[ForegroundFlow] = []
    for sample in range(trace.sample_count):
        up_residual = trace.used_up[:, sample].astype(float).copy()
        down_residual = trace.used_down[:, sample].astype(float).copy()
        while True:
            src = int(np.argmax(up_residual))
            if up_residual[src] <= trace.capacity * 1e-3:
                break
            down_choices = down_residual.copy()
            down_choices[src] = 0.0
            dst = int(np.argmax(down_choices))
            if down_choices[dst] <= trace.capacity * 1e-3:
                break
            rate = min(up_residual[src], down_residual[dst])
            # Jitter pairing order so the same heavy nodes do not always
            # pair with each other across seconds.
            if rng.random() < 0.1:
                alternatives = np.flatnonzero(
                    down_choices > rate * 0.5
                )
                if len(alternatives) > 1:
                    dst = int(rng.choice(alternatives))
                    rate = min(up_residual[src], down_residual[dst])
            start = sample * trace.interval
            flows.append(
                ForegroundFlow(
                    start=start,
                    end=start + resolution,
                    src=src,
                    dst=dst,
                    rate=float(rate),
                )
            )
            up_residual[src] -= rate
            down_residual[dst] -= rate
    return flows


class ForegroundReplay:
    """Drives synthesised foreground flows through a fluid simulator.

    Usage::

        sim = FluidSimulator(StarNetwork.uniform(16, capacity))
        replay = ForegroundReplay(flows)
        replay.pump(sim)          # submit flows starting <= sim.now
        ... submit repair task ...
        while not done:
            sim.run_until_completion(...)
            replay.pump(sim)      # keep the background current
    """

    def __init__(self, flows: list[ForegroundFlow]):
        self._flows = sorted(flows, key=lambda f: f.start)
        self._cursor = 0

    @property
    def pending(self) -> int:
        return len(self._flows) - self._cursor

    def next_start(self) -> float | None:
        if self._cursor >= len(self._flows):
            return None
        return self._flows[self._cursor].start

    def pump(self, sim: FluidSimulator) -> int:
        """Submit every flow whose start time has been reached."""
        submitted = 0
        while self._cursor < len(self._flows):
            flow = self._flows[self._cursor]
            if flow.start > sim.now + 1e-9:
                break
            sim.submit_bulk(
                [(flow.src, flow.dst, flow.size)],
                label=f"fg-{self._cursor}",
                max_rate=flow.rate,
            )
            self._cursor += 1
            submitted += 1
        return submitted


def competition_network(trace: WorkloadTrace) -> StarNetwork:
    """The raw full-capacity network the competition model runs on."""
    return StarNetwork.uniform(trace.node_count, trace.capacity)


def repair_under_competition(
    trace: WorkloadTrace,
    tree_edges: list[tuple[int, int]],
    bytes_per_edge: float,
    start_time: float,
    seed: int = 0,
    horizon: float = 120.0,
) -> float:
    """Transfer time of one pipelined repair competing with foreground.

    Replays the trace window ``[start_time, start_time + horizon)`` as
    rate-capped flows on a full-capacity network, submits the repair tree,
    and returns its duration.
    """
    window = trace.window(
        int(start_time), int(np.ceil(horizon / trace.interval))
    )
    flows = [
        ForegroundFlow(
            start=f.start + start_time,
            end=f.end + start_time,
            src=f.src,
            dst=f.dst,
            rate=f.rate,
        )
        for f in synthesize_flows(window, seed=seed)
    ]
    sim = FluidSimulator(competition_network(trace), start_time=start_time)
    replay = ForegroundReplay(flows)
    replay.pump(sim)
    repair = sim.submit_pipelined(tree_edges, bytes_per_edge, label="repair")
    while not repair.done:
        next_start = replay.next_start()
        if next_start is None:
            sim.run()
            break
        sim.run(max_time=next_start)
        if sim.now < next_start:
            # Everything currently active finished early; jump to the
            # next foreground arrival.
            sim.advance_to(next_start)
        replay.pump(sim)
    if not repair.done:
        sim.run()
    return repair.duration
