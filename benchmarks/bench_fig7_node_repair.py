"""E-F7: full-node repair time (Figure 7 / Experiment 6).

Setup per the paper: stripes are written randomly across the cluster, 64
chunks of one node are erased (64 stripes), and all of them are repaired
with RP, PPT, PivotRepair, and PivotRepair with the adaptive scheduling
strategy, for each (n, k).

Paper shape: PivotRepair outperforms RP and PPT; the adaptive strategy
reduces PivotRepair's node repair time further (up to 16.50% vs RP at
(9, 6)); PPT's full-node performance collapses at k = 10 because every one
of the 64 repairs pays the enumeration cost.
"""

import pytest

from conftest import record
from repro.experiments.fullnode_experiment import (
    CONCURRENCY,
    FIG7_SCHEMES,
    STRIPES_TO_ERASE,
    run_figure7,
)
from repro.repair import ExecutionConfig
from repro.units import mib, kib


@pytest.mark.benchmark(group="fig7")
def test_fig7_node_repair(benchmark, workload_traces, workload_networks):
    trace = workload_traces["TPC-DS"]
    network = workload_networks["TPC-DS"]
    config = ExecutionConfig(chunk_size=mib(64), slice_size=kib(32))

    results = benchmark.pedantic(
        run_figure7, args=(trace, network),
        kwargs={"config": config}, rounds=1, iterations=1,
    )
    schemes = list(FIG7_SCHEMES)
    lines = [
        f"Figure 7: node repair time ({STRIPES_TO_ERASE} x 64 MiB chunks, "
        f"TPC-DS trace, window={CONCURRENCY})"
    ]
    lines.append(
        f"  {'(n,k)':>9} | " + " | ".join(f"{s:>21}" for s in schemes)
    )
    for code, row in results.items():
        cells = [f"{row[s].total_seconds:>19.1f} s" for s in schemes]
        lines.append(f"  {str(code):>9} | " + " | ".join(cells))
    reductions = [
        1
        - results[code]["PivotRepair+strategy"].total_seconds
        / results[code]["RP"].total_seconds
        for code in results
    ]
    lines.append(
        "Headline: adaptive PivotRepair reduces node repair time vs RP by "
        f"up to {100 * max(reductions):.1f}% (paper: up to 16.50%)"
    )
    record("fig7_node_repair", lines)

    for code, row in results.items():
        for result in row.values():
            assert result.chunks_repaired == STRIPES_TO_ERASE
        # PivotRepair beats RP on every (n, k).
        assert (
            row["PivotRepair"].total_seconds < row["RP"].total_seconds
        ), code
        # The adaptive strategy never costs more than a modest margin.
        # At large k the fluid max-min substrate already reclaims any
        # misallocated bandwidth, so scheduling freedom buys little (see
        # EXPERIMENTS.md); and because real wall-clock planning delays
        # shift which trace-second each plan observes, individual cells
        # vary ~15% between runs — hence the generous bound.
        assert (
            row["PivotRepair+strategy"].total_seconds
            <= row["PivotRepair"].total_seconds * 1.40
        ), code
    # ... and wins clearly on at least half of the codes (at large k every
    # tree spans nearly the whole cluster, so scheduling freedom vanishes
    # — the same effect the paper notes shrinks full-node gains).
    clear_wins = sum(
        row["PivotRepair+strategy"].total_seconds
        < row["PivotRepair"].total_seconds * 0.95
        for row in results.values()
    )
    assert clear_wins >= 2
    # PPT's full-node repair collapses at k = 10.
    assert (
        results[(14, 10)]["PPT"].total_seconds
        > 10 * results[(14, 10)]["PivotRepair"].total_seconds
    )
    # The adaptive strategy helps overall.
    assert max(reductions) > 0.05
    benchmark.extra_info["seconds"] = {
        str(code): {s: round(row[s].total_seconds, 1) for s in schemes}
        for code, row in results.items()
    }
