"""Tests for Algorithm 1 — including the paper's Figure 4 walkthrough and a
property-based check of Theorem 1 (optimal B_min) against exhaustive
enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ppt import PPTPlanner
from repro.core.algorithm import (
    PivotRepairPlanner,
    build_pivot_tree,
    insert_pivots,
    select_pivots,
)
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.exceptions import PlanningError

# Figure 4's bandwidth table (Mb/s). Node 0 plays the requestor R; node 1
# is the failed node, nodes 2..6 are helpers N2..N6.
FIG4_UP = {2: 750, 3: 500, 4: 150, 5: 500, 6: 500, 0: 980}
FIG4_DOWN = {2: 100, 3: 130, 4: 1000, 5: 200, 6: 900, 0: 980}


def snap(up, down):
    return BandwidthSnapshot(up=up, down=down)


def fig4_snapshot():
    return snap(FIG4_UP, FIG4_DOWN)


class TestPivotSelection:
    def test_figure4_pivot_order(self):
        """S = {N6, N5, N4, N3} sorted descending by theo(.)."""
        pivots = select_pivots(fig4_snapshot(), [2, 3, 4, 5, 6], 4)
        assert pivots == [6, 5, 4, 3]

    def test_ties_break_on_node_id(self):
        view = snap({1: 10, 2: 10, 3: 10}, {1: 10, 2: 10, 3: 10})
        assert select_pivots(view, [3, 2, 1], 2) == [1, 2]

    def test_too_few_candidates_rejected(self):
        with pytest.raises(PlanningError):
            select_pivots(fig4_snapshot(), [2, 3], 4)


class TestInserting:
    def test_figure4_preliminary_tree(self):
        """Inserting yields R <- {N6, N4}, N6 <- {N5, N3} (Figure 4)."""
        parents = insert_pivots(fig4_snapshot(), 0, [6, 5, 4, 3])
        assert parents == {6: 0, 5: 6, 4: 0, 3: 6}


class TestReplacing:
    def test_figure4_replaces_n4_with_n2(self):
        tree = build_pivot_tree(fig4_snapshot(), 0, [2, 3, 4, 5, 6], 4)
        # Final tree: R <- {N6, N2}, N6 <- {N5, N3}; N4 swapped out for N2.
        assert tree.parent(6) == 0
        assert tree.parent(2) == 0
        assert tree.parent(5) == 6
        assert tree.parent(3) == 6
        assert 4 not in tree

    def test_figure4_bmin(self):
        view = fig4_snapshot()
        tree = build_pivot_tree(view, 0, [2, 3, 4, 5, 6], 4)
        assert tree.bmin(view) == pytest.approx(450)

    def test_no_replacement_when_k_equals_candidates(self):
        view = fig4_snapshot()
        tree = build_pivot_tree(view, 0, [3, 4, 5, 6], 4)
        assert sorted(tree.helpers) == [3, 4, 5, 6]


class TestMotivatingExample:
    def test_figure3_beats_rp_chain(self):
        """PivotRepair's tree (450) beats RP's id-ordered chain (<=200)."""
        from repro.baselines.rp import RPPlanner

        view = fig4_snapshot()
        pivot_plan = PivotRepairPlanner().plan(view, 0, [2, 3, 4, 5, 6], 4)
        rp_plan = RPPlanner().plan(view, 0, [3, 4, 5, 6], 4)
        assert pivot_plan.bmin == pytest.approx(450)
        # N5's 200 Mb/s downlink bottlenecks any chain through it (§III-B).
        assert rp_plan.bmin <= 200
        assert pivot_plan.bmin > 2 * rp_plan.bmin


class TestPlannerInterface:
    def test_plan_records_time_and_bmin(self):
        plan = PivotRepairPlanner().plan(fig4_snapshot(), 0, [2, 3, 4, 5, 6], 4)
        assert plan.scheme == "PivotRepair"
        assert plan.is_pipelined
        assert plan.planning_seconds > 0
        assert plan.bmin == pytest.approx(450)
        assert plan.effective_planning_seconds == plan.planning_seconds

    def test_requestor_in_candidates_rejected(self):
        with pytest.raises(PlanningError):
            PivotRepairPlanner().plan(fig4_snapshot(), 0, [0, 2, 3, 4], 4)

    def test_duplicate_candidates_rejected(self):
        with pytest.raises(PlanningError):
            PivotRepairPlanner().plan(fig4_snapshot(), 0, [2, 2, 3, 4], 4)

    def test_bad_k_rejected(self):
        with pytest.raises(PlanningError):
            PivotRepairPlanner().plan(fig4_snapshot(), 0, [2, 3, 4, 5], 0)

    def test_node_missing_from_snapshot_rejected(self):
        with pytest.raises(PlanningError):
            PivotRepairPlanner().plan(fig4_snapshot(), 0, [2, 3, 4, 99], 4)


def random_snapshot(node_count, seed, low=1, high=1000):
    rng = np.random.default_rng(seed)
    up = {i: float(rng.integers(low, high)) for i in range(node_count)}
    down = {i: float(rng.integers(low, high)) for i in range(node_count)}
    return snap(up, down)


class TestTheorem1Optimality:
    """Algorithm 1's B_min must match exhaustive enumeration (Theorem 1)."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=2),
    )
    def test_matches_exhaustive_optimum(self, seed, k, extra):
        node_count = 1 + k + extra  # requestor + candidates
        view = random_snapshot(node_count, seed)
        candidates = list(range(1, node_count))
        greedy = build_pivot_tree(view, 0, candidates, k)
        exhaustive = PPTPlanner(tree_budget=10**6, helper_selection="all_subsets").plan(view, 0, candidates, k)
        assert greedy.bmin(view) == pytest.approx(exhaustive.bmin, rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_matches_exhaustive_with_congested_nodes(self, seed):
        # Bimodal bandwidths: some nodes nearly saturated (hot storage).
        rng = np.random.default_rng(seed)
        node_count = 6
        up, down = {}, {}
        for i in range(node_count):
            up[i] = float(rng.choice([20, 900]))
            down[i] = float(rng.choice([20, 900]))
        view = snap(up, down)
        candidates = list(range(1, node_count))
        greedy = build_pivot_tree(view, 0, candidates, 4)
        exhaustive = PPTPlanner(tree_budget=10**6, helper_selection="all_subsets").plan(view, 0, candidates, 4)
        assert greedy.bmin(view) == pytest.approx(exhaustive.bmin, rel=1e-9)

    def test_structural_invariants(self):
        for seed in range(30):
            view = random_snapshot(8, seed)
            tree = build_pivot_tree(view, 0, list(range(1, 8)), 5)
            assert len(tree.helpers) == 5
            assert tree.root == 0
            # All helpers distinct and drawn from candidates.
            assert set(tree.helpers) <= set(range(1, 8))
