"""Repair plans and the planner interface shared by all schemes."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.tree import RepairTree
from repro.exceptions import PlanningError
from repro.obs.tracer import NULL_TRACER


@dataclass
class RepairPlan:
    """Output of a repair planner for one single-chunk repair.

    Pipelined schemes (RP, PPT, PivotRepair) fill ``tree``; staged schemes
    (conventional, PPR) fill ``stages`` — lists of (src, dst) transfer rounds
    executed one after another, each round a set of independent bulk flows.
    """

    scheme: str
    requestor: int
    helpers: list[int]
    tree: RepairTree | None = None
    stages: list[list[tuple[int, int]]] | None = None
    bmin: float = 0.0
    planning_seconds: float = 0.0
    #: Number of candidate trees the planner evaluated (1 for greedy schemes).
    trees_examined: int = 1
    #: For enumeration planners that hit their budget: the projected full
    #: enumeration time (measured per-tree cost x exact tree count).
    extrapolated_seconds: float | None = None
    notes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.tree is None) == (self.stages is None):
            raise PlanningError(
                "a plan must have exactly one of tree or stages"
            )
        if self.tree is not None and self.tree.root != self.requestor:
            raise PlanningError("tree root must be the requestor")

    @property
    def is_pipelined(self) -> bool:
        return self.tree is not None

    @property
    def effective_planning_seconds(self) -> float:
        """Planning cost including extrapolation for capped enumerators."""
        if self.extrapolated_seconds is not None:
            return self.extrapolated_seconds
        return self.planning_seconds


class RepairPlanner(ABC):
    """Common interface: compute a repair plan from a bandwidth snapshot."""

    #: Human-readable scheme name, e.g. "PivotRepair".
    name: str = "base"

    #: Structured event tracer; reassign to a live Tracer to observe
    #: planning decisions (subclasses may emit richer per-step events).
    tracer = NULL_TRACER

    @contextmanager
    def traced(self, tracer):
        """Temporarily route this planner's events to ``tracer``."""
        previous = self.tracer
        self.tracer = tracer
        try:
            yield self
        finally:
            self.tracer = previous

    def plan(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: Sequence[int],
        k: int,
    ) -> RepairPlan:
        """Plan a single-chunk repair; wall-clock times the planning step.

        Args:
            snapshot: available bandwidths at planning time.
            requestor: node where the chunk is rebuilt (tree root).
            candidates: surviving nodes holding chunks of the stripe
                (the n - 1 possible helpers), excluding the requestor.
            k: number of helpers the code requires.
        """
        candidates = self._validated(snapshot, requestor, candidates, k)
        started = time.perf_counter()
        plan = self._build(snapshot, requestor, candidates, k)
        plan.planning_seconds = time.perf_counter() - started
        if self.tracer.enabled:
            self.tracer.instant(
                "planner.plan", t=snapshot.time, track="planner",
                scheme=plan.scheme, requestor=requestor,
                helpers=len(plan.helpers), bmin=plan.bmin,
                trees_examined=plan.trees_examined,
            )
        return plan

    @abstractmethod
    def _build(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: list[int],
        k: int,
    ) -> RepairPlan:
        """Scheme-specific planning; must fill everything but timing."""

    def _validated(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: Sequence[int],
        k: int,
    ) -> list[int]:
        candidates = list(candidates)
        if k <= 0:
            raise PlanningError(f"k must be positive, got {k}")
        if requestor in candidates:
            raise PlanningError("the requestor cannot be a helper candidate")
        if len(set(candidates)) != len(candidates):
            raise PlanningError("duplicate helper candidates")
        if len(candidates) < k:
            raise PlanningError(
                f"need at least k={k} candidates, got {len(candidates)}"
            )
        known = set(snapshot.up)
        missing = ({requestor} | set(candidates)) - known
        if missing:
            raise PlanningError(f"nodes missing from snapshot: {missing}")
        return candidates
