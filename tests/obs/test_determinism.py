"""Determinism and telemetry-consistency tests for traced repairs.

Same seed + same inputs must give a byte-identical JSONL event stream.
The only nondeterministic input is wall-clock planner time, which the
full-node orchestrators fold into the simulated clock — so those tests
pin ``planning_seconds`` to zero via a planner subclass.
"""

import numpy as np

from repro.core import PivotRepairPlanner
from repro.ec import RSCode, place_stripes
from repro.network.topology import StarNetwork
from repro.obs import NULL_TRACER, FlightRecorder, Tracer, diagnose, to_jsonl
from repro.repair import (
    pipeline_bytes_per_edge,
    repair_full_node,
    repair_full_node_adaptive,
    repair_single_chunk,
)
from repro.repair.pipeline import ExecutionConfig


NODE_COUNT = 10
CODE = RSCode(6, 4)


class ZeroCostPlanner(PivotRepairPlanner):
    """PivotRepair planner whose wall-clock planning time is pinned to 0.

    Full-node orchestrators advance the simulated clock by the measured
    planning time, which would make event timestamps nondeterministic.
    """

    def plan(self, *args, **kwargs):
        plan = super().plan(*args, **kwargs)
        plan.planning_seconds = 0.0
        return plan


def seeded_network(seed=7):
    rng = np.random.default_rng(seed)
    ups = [float(rng.uniform(200.0, 1200.0)) for _ in range(NODE_COUNT)]
    downs = [float(rng.uniform(200.0, 1200.0)) for _ in range(NODE_COUNT)]
    return StarNetwork.constant(ups, downs)


def small_config():
    return ExecutionConfig(
        chunk_size=10_000, slice_size=1000, per_slice_overhead=0.0
    )


def traced_single_chunk():
    tracer = Tracer()
    result = repair_single_chunk(
        PivotRepairPlanner(), seeded_network(), requestor=0,
        candidates=range(1, NODE_COUNT), k=CODE.k,
        config=small_config(), tracer=tracer,
    )
    return result, to_jsonl(tracer.events)


def traced_full_node():
    stripes = place_stripes(6, CODE, NODE_COUNT, np.random.default_rng(3))
    failed = stripes[0].placement[0]
    tracer = Tracer()
    result = repair_full_node_adaptive(
        ZeroCostPlanner(), seeded_network(), stripes, failed,
        config=small_config(), tracer=tracer,
    )
    return result, to_jsonl(tracer.events)


class TestDeterminism:
    def test_single_chunk_jsonl_is_byte_identical(self):
        _, first = traced_single_chunk()
        _, second = traced_single_chunk()
        assert first
        assert first == second

    def test_full_node_jsonl_is_byte_identical(self):
        _, first = traced_full_node()
        _, second = traced_full_node()
        assert first
        assert first == second

    def test_tracing_does_not_change_results(self):
        traced, _ = traced_single_chunk()
        plain = repair_single_chunk(
            PivotRepairPlanner(), seeded_network(), requestor=0,
            candidates=range(1, NODE_COUNT), k=CODE.k,
            config=small_config(),
        )
        assert plain.transfer_seconds == traced.transfer_seconds
        assert plain.bmin == traced.bmin
        assert plain.bytes_transferred == traced.bytes_transferred

    def test_null_tracer_stays_empty(self):
        repair_single_chunk(
            PivotRepairPlanner(), seeded_network(), requestor=0,
            candidates=range(1, NODE_COUNT), k=CODE.k,
            config=small_config(), tracer=NULL_TRACER,
        )
        assert len(NULL_TRACER.events) == 0


class TestTelemetryConsistency:
    def test_single_chunk_counters_match_plan(self):
        result, _ = traced_single_chunk()
        telemetry = result.telemetry
        assert telemetry is not None
        counters = telemetry["counters"]
        assert counters["flows_completed"] == 1
        assert counters["flows_submitted"] == 1
        assert counters["planner_events"] >= 1
        assert counters["trace_events"] > 0

        tree = result.plan.tree
        expected = pipeline_bytes_per_edge(
            small_config(), tree.depth()
        ) * len(tree.edges())
        assert result.bytes_transferred == expected
        assert sum(telemetry["per_bytes_up"].values()) == expected

        # Every sender in the tree shows up in the per-node counters.
        senders = {str(src) for src, _ in tree.edges()}
        assert set(telemetry["per_bytes_up"]) == senders

    def test_full_node_telemetry_counts_flows_and_rounds(self):
        result, _ = traced_full_node()
        telemetry = result.telemetry
        assert telemetry is not None
        counters = telemetry["counters"]
        assert counters["flows_completed"] == result.chunks_repaired
        assert counters["scheduler_rounds"] >= result.chunks_repaired
        assert counters["scheduler_events"] > 0
        assert counters["planner_events"] > 0
        histograms = telemetry["histograms"]
        assert histograms["task_seconds"]["count"] == result.chunks_repaired
        assert (
            histograms["planner_seconds"]["count"] == result.chunks_repaired
        )
        assert result.bytes_transferred == sum(
            telemetry["per_bytes_up"].values()
        )


class TestSampledDeterminism:
    """Same seed => byte-identical sample stream and diagnosis JSON."""

    @staticmethod
    def sampled_full_node():
        stripes = place_stripes(6, CODE, NODE_COUNT, np.random.default_rng(3))
        failed = stripes[0].placement[0]
        network = seeded_network()
        tracer = Tracer()
        sampler = FlightRecorder(interval=0.001, capacity=65536)
        result = repair_full_node(
            ZeroCostPlanner(), network, stripes, failed,
            config=small_config(), tracer=tracer, sampler=sampler,
        )
        diagnosis = diagnose(
            tracer.events,
            samples=list(sampler.samples),
            network=network,
            telemetry=result.telemetry,
            sampler=sampler,
        )
        return result, sampler, diagnosis

    def test_sample_stream_is_byte_identical(self):
        _, first, _ = self.sampled_full_node()
        _, second, _ = self.sampled_full_node()
        assert len(first) > 0
        assert first.to_jsonl() == second.to_jsonl()

    def test_diagnosis_json_is_byte_identical(self):
        _, _, first = self.sampled_full_node()
        _, _, second = self.sampled_full_node()
        assert first.repairs
        assert first.to_json() == second.to_json()

    def test_sampling_does_not_change_results(self):
        sampled, _, _ = self.sampled_full_node()
        stripes = place_stripes(6, CODE, NODE_COUNT, np.random.default_rng(3))
        plain = repair_full_node(
            ZeroCostPlanner(), seeded_network(), stripes,
            stripes[0].placement[0], config=small_config(),
        )
        assert plain.total_seconds == sampled.total_seconds
        assert plain.bytes_transferred == sampled.bytes_transferred


class TestFaultedDeterminism:
    """Identical seed + fault plan => byte-identical JSONL trace."""

    @staticmethod
    def faulted_single_chunk():
        from repro.faults import FaultPlan, RetryPolicy
        from repro.repair import repair_single_chunk_faulted

        faults = FaultPlan.random(
            21, NODE_COUNT, horizon=0.5, crashes=1, degradations=1,
            stalls=1, protect=(0,),
        )
        tracer = Tracer()
        result = repair_single_chunk_faulted(
            ZeroCostPlanner(), seeded_network(), requestor=0,
            candidates=range(1, NODE_COUNT), k=CODE.k, faults=faults,
            policy=RetryPolicy(detection_timeout=0.05),
            config=small_config(), tracer=tracer,
        )
        return result, to_jsonl(tracer.events)

    @staticmethod
    def faulted_full_node():
        from repro.faults import FaultPlan, RetryPolicy
        from repro.repair import repair_full_node

        stripes = place_stripes(6, CODE, NODE_COUNT, np.random.default_rng(3))
        failed = stripes[0].placement[0]
        helper = next(n for n in stripes[0].placement if n != failed)
        faults = FaultPlan.from_spec(f"crash:{helper}@0.004")
        tracer = Tracer()
        result = repair_full_node(
            ZeroCostPlanner(), seeded_network(), stripes, failed,
            config=small_config(), tracer=tracer, faults=faults,
            retry_policy=RetryPolicy(detection_timeout=0.002),
        )
        return result, to_jsonl(tracer.events)

    def test_faulted_single_chunk_jsonl_is_byte_identical(self):
        first_result, first = self.faulted_single_chunk()
        _, second = self.faulted_single_chunk()
        assert first
        assert first == second
        # The plan injected real faults into the traced stream.
        assert '"fault.' in first

    def test_faulted_full_node_jsonl_is_byte_identical(self):
        first_result, first = self.faulted_full_node()
        _, second = self.faulted_full_node()
        assert first
        assert first == second
        assert '"repair.replan"' in first

    def test_faulted_results_are_reproducible(self):
        first, _ = self.faulted_single_chunk()
        second, _ = self.faulted_single_chunk()
        assert first.ok == second.ok
        assert first.attempts == second.attempts
        assert first.bytes_transferred == second.bytes_transferred


class TestEngineTraceEquivalence:
    """The fast and reference fluid engines must emit byte-identical
    default (no-wall) JSONL traces, including the causal parent/link
    fields the critical-path reconstruction depends on."""

    def run(self, engine):
        stripes = place_stripes(6, CODE, NODE_COUNT, np.random.default_rng(3))
        failed = stripes[0].placement[0]
        config = ExecutionConfig(
            chunk_size=10_000, slice_size=1000, per_slice_overhead=0.0,
            engine=engine,
        )
        tracer = Tracer()
        repair_full_node_adaptive(
            ZeroCostPlanner(), seeded_network(), stripes, failed,
            config=config, tracer=tracer,
        )
        return to_jsonl(tracer.events)

    def test_fast_and_reference_traces_identical(self):
        fast = self.run("fast")
        reference = self.run("reference")
        assert fast
        assert fast == reference

    def test_trace_carries_causal_fields(self):
        jsonl = self.run("fast")
        assert '"parent_id"' in jsonl
        assert '"links"' in jsonl

    def test_hedged_trace_identical_across_engines(self):
        from repro.faults import FaultPlan, RetryPolicy
        from repro.repair import repair_single_chunk_faulted
        from repro.resilience import HealthPolicy

        def run(engine):
            mib = 1024 * 1024
            victim = 3
            net = StarNetwork.constant(
                [12 * mib if i == victim else 10 * mib for i in range(8)],
                [12 * mib if i == victim else 10 * mib for i in range(8)],
            )
            tracer = Tracer()
            repair_single_chunk_faulted(
                PivotRepairPlanner(), net, 0, [1, 2, 3, 4, 5], CODE.k,
                FaultPlan.from_spec("degrade:3@0.1-1000x0.05"),
                policy=RetryPolicy(detection_timeout=0.05),
                config=ExecutionConfig(
                    chunk_size=8 * mib, slice_size=32768, engine=engine
                ),
                tracer=tracer, health=HealthPolicy(),
            )
            return to_jsonl(tracer.events)

        fast = run("fast")
        assert '"span.link"' in fast  # hedge adoption link present
        assert fast == run("reference")
