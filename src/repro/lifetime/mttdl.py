"""Closed-form MTTDL of an (n, k) stripe — the golden reference.

The classic birth-death Markov chain over the number of failed chunks
``i``: failures arrive at rate ``(n - i) * λ`` (each of the remaining
``n - i`` intact chunks fails independently at rate λ), repairs complete
at rate ``min(i, streams) * μ`` (up to ``streams`` concurrent repairs,
each exponential with rate μ), and state ``i = n - k + 1`` is absorbing —
fewer than ``k`` chunks remain, the data is gone.

This chain is *exactly* the lifetime simulator configured with
exponential disk failures (zero replacement time), an
:class:`~repro.lifetime.durations.ExponentialDurations` repair model, an
eager policy, and a single stripe — so the Monte-Carlo estimate must
converge to :func:`markov_mttdl`, which the regression suite checks.

Solved by first-step analysis: with ``T_i`` the expected time to
absorption from state ``i``,

    (λ_i + μ_i) T_i = 1 + λ_i T_{i+1} + μ_i T_{i-1},  T_absorb = 0

a tridiagonal linear system handed to numpy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LifetimeError

__all__ = ["markov_mttdl"]


def markov_mttdl(
    n: int,
    k: int,
    failure_rate: float,
    repair_rate: float,
    repair_streams: int = 1,
) -> float:
    """Expected seconds from all-intact to data loss for one stripe.

    Args:
        n, k: the erasure code — data loss at ``n - k + 1`` failures.
        failure_rate: per-chunk failure rate λ (1 / MTTF seconds).
        repair_rate: per-repair completion rate μ (1 / mean repair
            seconds).
        repair_streams: concurrent repairs the cluster sustains.
    """
    if n <= k or k < 1:
        raise LifetimeError(f"need n > k >= 1, got ({n}, {k})")
    if failure_rate <= 0 or repair_rate <= 0:
        raise LifetimeError("failure and repair rates must be positive")
    if repair_streams < 1:
        raise LifetimeError("need at least one repair stream")

    absorbing = n - k + 1  # first state with data loss
    transient = absorbing  # states 0 .. n-k
    matrix = np.zeros((transient, transient))
    ones = np.ones(transient)
    for i in range(transient):
        lam = (n - i) * failure_rate
        mu = min(i, repair_streams) * repair_rate
        matrix[i, i] = lam + mu
        if i + 1 < transient:
            matrix[i, i + 1] = -lam  # to i+1 (absorption drops the term)
        if i > 0:
            matrix[i, i - 1] = -mu
    times = np.linalg.solve(matrix, ones)
    return float(times[0])
