"""Chaos and acceptance tests for fault-injected single-chunk repairs.

The contract under test: for *any* seeded fault plan, a single-chunk
repair either completes with decode-verified correct bytes or returns a
clean :class:`RepairFailed` — it never hangs and never silently returns
short data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.master import Cluster
from repro.core import PivotRepairPlanner
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.ec import RSCode
from repro.faults import FaultPlan, RetryPolicy, run_chaos_single_chunk
from repro.network.topology import StarNetwork
from repro.obs import Tracer
from repro.repair import RepairFailed, repair_single_chunk_faulted
from repro.repair.fullnode import choose_requestor
from repro.repair.pipeline import ExecutionConfig

NODE_COUNT = 12
CODE = RSCode(6, 4)
#: ~0.7-2s transfers on ~1e8 B/s links: faults in [0, 1] land mid-repair.
CONFIG = ExecutionConfig(chunk_size=64 * 1024 * 1024)


def heterogeneous_network():
    return StarNetwork.constant(
        [1e8 + i * 3e6 for i in range(NODE_COUNT)],
        [1e8 + i * 5e6 for i in range(NODE_COUNT)],
    )


def seeded_cluster(seed=7, stripes=1, chunk_bytes=2048):
    cluster = Cluster(NODE_COUNT, CODE)
    rng = np.random.default_rng(seed)
    written = cluster.write_random_stripes(stripes, chunk_bytes, rng)
    return cluster, written


def plan_without_faults(network, requestor, candidates):
    snapshot = BandwidthSnapshot.from_network(network, 0.0)
    return PivotRepairPlanner().plan(snapshot, requestor, candidates, CODE.k)


class TestAcceptance:
    """ISSUE acceptance: crash a non-leaf pivot mid-repair; the repair
    must trace a re-plan and still complete with correct bytes."""

    def setup_repair(self):
        cluster, (stripe,) = seeded_cluster()
        network = heterogeneous_network()
        failed_node = stripe.placement[0]
        snapshot = BandwidthSnapshot.from_network(network, 0.0)
        requestor = choose_requestor(
            snapshot, stripe, failed_node, NODE_COUNT
        )
        candidates = stripe.surviving_nodes(failed_node)
        plan = plan_without_faults(network, requestor, candidates)
        non_leaf = [
            h for h in plan.tree.helpers if plan.tree.children(h)
        ]
        assert non_leaf, "test network must yield a non-trivial tree"
        return cluster, network, stripe, requestor, non_leaf[0]

    def test_nonleaf_pivot_crash_replans_and_repairs_correctly(self):
        cluster, network, stripe, requestor, victim = self.setup_repair()
        faults = FaultPlan.from_spec(f"crash:{victim}@0.2")
        tracer = Tracer()
        outcome = run_chaos_single_chunk(
            cluster, network, stripe, 0, faults,
            policy=RetryPolicy(), config=CONFIG, tracer=tracer,
        )
        assert outcome.ok
        # The injected crash was detected and triggered a traced re-plan.
        names = [event.name for event in tracer.events]
        assert "fault.crash" in names
        assert "repair.detect" in names
        assert "repair.replan" in names
        assert outcome.result.attempts == 2
        assert outcome.result.replans == 1
        assert victim not in outcome.result.plan.helpers
        # The rebuilt bytes decode-verify against an independent decode.
        assert outcome.correct is True
        assert outcome.payload is not None
        # The repaired chunk really lives on the requestor now.
        idx = stripe.chunk_on_node(requestor)
        stored = cluster.nodes[requestor].read(stripe.chunk_id(idx))
        assert np.array_equal(stored, outcome.payload)

    def test_chunk_read_error_forces_replan(self):
        cluster, network, stripe, _, victim = self.setup_repair()
        faults = FaultPlan.from_spec(f"readerr:{victim}@0.2")
        tracer = Tracer()
        outcome = run_chaos_single_chunk(
            cluster, network, stripe, 0, faults,
            policy=RetryPolicy(), config=CONFIG, tracer=tracer,
        )
        assert outcome.ok and outcome.correct
        assert outcome.result.attempts == 2
        assert victim not in outcome.result.plan.helpers

    def test_helper_stall_is_detected_and_survived(self):
        cluster, network, stripe, _, victim = self.setup_repair()
        # Freeze the pivot for longer than the whole repair would take;
        # only the stall detector can save the run.
        faults = FaultPlan.from_spec(f"stall:{victim}@0.2+30")
        tracer = Tracer()
        outcome = run_chaos_single_chunk(
            cluster, network, stripe, 0, faults,
            policy=RetryPolicy(detection_timeout=0.3),
            config=CONFIG, tracer=tracer,
        )
        assert outcome.ok and outcome.correct
        assert outcome.result.attempts >= 2
        kinds = [
            event.fields.get("kind")
            for event in tracer.events
            if event.name == "repair.detect"
        ]
        assert "stall" in kinds


class TestBytesAccounting:
    """Regression: bytes of a flow killed by a crash and restarted by the
    retry must not be double-counted."""

    def _faulted_run(self):
        cluster, network, stripe, requestor, victim = (
            TestAcceptance().setup_repair()
        )
        candidates = [n for n in stripe.surviving_nodes(stripe.placement[0])]
        faults = FaultPlan.from_spec(f"crash:{victim}@0.2")
        result = repair_single_chunk_faulted(
            PivotRepairPlanner(), network, requestor, candidates, CODE.k,
            faults, policy=RetryPolicy(), config=CONFIG,
        )
        assert result.ok and result.attempts == 2
        return result

    def test_bytes_match_fluid_accounting_exactly(self):
        result = self._faulted_run()
        telemetry = result.telemetry
        per_node = sum(telemetry["per_bytes_up"].values())
        assert result.bytes_transferred == pytest.approx(per_node)
        assert telemetry["counters"]["bytes_transferred"] == pytest.approx(
            result.bytes_transferred
        )

    def test_killed_attempt_counts_partial_bytes_once(self):
        result = self._faulted_run()
        tree = result.plan.tree
        from repro.repair.pipeline import pipeline_bytes_per_edge

        full_attempt = pipeline_bytes_per_edge(
            CONFIG, tree.depth()
        ) * len(tree.edges())
        # More than one clean attempt's bytes (the killed attempt moved
        # real data before the crash) but far less than two full attempts
        # (the naive per-attempt accounting this test pins against).
        assert result.bytes_transferred > full_attempt
        assert result.bytes_transferred < 2 * full_attempt


class TestFailurePaths:
    def repair(self, faults, policy=None, candidates=None):
        cluster, (stripe,) = seeded_cluster()
        network = heterogeneous_network()
        failed_node = stripe.placement[0]
        snapshot = BandwidthSnapshot.from_network(network, 0.0)
        requestor = choose_requestor(
            snapshot, stripe, failed_node, NODE_COUNT
        )
        if candidates is None:
            candidates = stripe.surviving_nodes(failed_node)
        return requestor, repair_single_chunk_faulted(
            PivotRepairPlanner(), network, requestor, candidates, CODE.k,
            faults, policy=policy or RetryPolicy(), config=CONFIG,
        )

    def test_requestor_crash_fails_cleanly(self):
        cluster, (stripe,) = seeded_cluster()
        network = heterogeneous_network()
        failed_node = stripe.placement[0]
        snapshot = BandwidthSnapshot.from_network(network, 0.0)
        requestor = choose_requestor(
            snapshot, stripe, failed_node, NODE_COUNT
        )
        result = repair_single_chunk_faulted(
            PivotRepairPlanner(), network, requestor,
            stripe.surviving_nodes(failed_node), CODE.k,
            FaultPlan.from_spec(f"crash:{requestor}@0.2"),
            config=CONFIG,
        )
        assert isinstance(result, RepairFailed)
        assert not result.ok
        assert "requestor" in result.reason

    def test_too_few_survivors_fails_cleanly(self):
        cluster, (stripe,) = seeded_cluster()
        failed_node = stripe.placement[0]
        survivors = stripe.surviving_nodes(failed_node)
        exact_k = survivors[: CODE.k]
        _, result = self.repair(
            FaultPlan.from_spec(f"crash:{exact_k[0]}@0.2"),
            candidates=exact_k,
        )
        assert isinstance(result, RepairFailed)
        assert "survive" in result.reason
        assert result.attempts >= 1

    def test_retry_budget_exhaustion(self):
        cluster, (stripe,) = seeded_cluster()
        failed_node = stripe.placement[0]
        survivors = stripe.surviving_nodes(failed_node)
        # Freeze everyone forever: every attempt stalls, every retry fails.
        spec = ";".join(f"stall:{n}@0+1000" for n in survivors)
        _, result = self.repair(
            FaultPlan.from_spec(spec),
            policy=RetryPolicy(detection_timeout=0.2, max_retries=2),
        )
        assert isinstance(result, RepairFailed)
        assert "retry budget" in result.reason
        assert result.attempts == 3  # 1 try + 2 retries


class TestChaosProperty:
    """For any seeded fault plan: completes-correct or fails-clean."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_fault_plans_never_corrupt(self, seed):
        cluster, (stripe,) = seeded_cluster(seed=3)
        network = heterogeneous_network()
        faults = FaultPlan.random(
            seed, NODE_COUNT, horizon=2.0, crashes=2, degradations=2,
            stalls=2, read_errors=1,
        )
        outcome = run_chaos_single_chunk(
            cluster, network, stripe, 0, faults,
            policy=RetryPolicy(detection_timeout=0.3),
            config=CONFIG,
        )
        if outcome.ok:
            # Completed repairs must carry verified-correct bytes.
            assert outcome.correct is True
            assert outcome.payload is not None
            assert outcome.result.attempts >= 1
        else:
            # Failed repairs must deliver no data at all, with a reason.
            assert isinstance(outcome.result, RepairFailed)
            assert outcome.payload is None
            assert outcome.correct is None
            assert outcome.result.reason

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_same_seed_same_outcome(self, seed):
        faults = FaultPlan.random(seed, NODE_COUNT, horizon=2.0, crashes=2)

        def run():
            cluster, (stripe,) = seeded_cluster(seed=3)
            return run_chaos_single_chunk(
                cluster, heterogeneous_network(), stripe, 0, faults,
                policy=RetryPolicy(), config=CONFIG,
            )

        first, second = run(), run()
        assert first.ok == second.ok
        assert first.result.attempts == second.result.attempts
        assert first.result.bytes_transferred == pytest.approx(
            second.result.bytes_transferred
        )
        if first.ok:
            assert np.array_equal(first.payload, second.payload)
