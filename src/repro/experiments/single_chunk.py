"""Single-chunk repair experiments (Figure 5, Experiments 1-3).

For each workload trace and each (n, k), a set of congested instants is
sampled; at each instant a stripe is laid over the cluster, the requestor
and the n-1 surviving helpers are chosen, and each scheme plans and
executes a 64 MiB single-chunk repair.  The three Figure 5 rows read
different columns of the same runs:

* (a-c) overall repair time = algorithm running time + transfer time,
* (d-f) algorithm running time (wall clock; extrapolated for capped PPT),
* (g-i) transfer time (simulated).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

import numpy as np

from repro.baselines import PPTPlanner, RPPlanner
from repro.core import PivotRepairPlanner
from repro.exceptions import PlanningError
from repro.experiments.config import DEFAULT_SETTINGS, ExperimentSettings
from repro.obs.tracer import NULL_TRACER
from repro.repair import ExecutionConfig, repair_single_chunk
from repro.traces import congested_seconds
from repro.traces.workload import WorkloadTrace

#: Instants sampled per (workload, code) cell; the paper averages 5 runs.
INSTANTS_PER_CELL = 5

#: PPT's enumeration budget: (6, 4) and (9, 6) run exhaustively
#: (125 / 16807 trees); (12, 8) and (14, 10) are capped and extrapolated,
#: exactly the regime where the paper reports PPT's projected times.
PPT_TREE_BUDGET = 20_000

#: The schemes Figure 5 compares.
SCHEMES = ("RP", "PPT", "PivotRepair")


def make_planner(scheme: str):
    """Planner factory for the Figure 5 scheme names."""
    if scheme == "RP":
        return RPPlanner()
    if scheme == "PPT":
        return PPTPlanner(tree_budget=PPT_TREE_BUDGET)
    if scheme == "PivotRepair":
        return PivotRepairPlanner()
    raise PlanningError(f"unknown scheme {scheme!r}")


@dataclass
class CellResult:
    """Mean timings of one (workload, (n,k), scheme) cell."""

    planning_seconds: float
    transfer_seconds: float

    @property
    def overall_seconds(self) -> float:
        return self.planning_seconds + self.transfer_seconds


def congested_instants(
    trace: WorkloadTrace, count: int, seed: int = 1
) -> list[float]:
    """Sample ``count`` congested seconds of a trace ("we randomly select
    a set of bandwidths situations with congestions", Section V-B)."""
    candidates = np.flatnonzero(congested_seconds(trace, 0.9))
    if len(candidates) == 0:
        candidates = np.arange(trace.sample_count)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(
        candidates, size=min(count, len(candidates)), replace=False
    )
    return [float(t) for t in sorted(chosen)]


def stripe_nodes_at(trace: WorkloadTrace, instant: float, n: int, seed: int):
    """Lay an n-node stripe over the cluster for one repair experiment.

    The failed node is the most congested stripe member at the instant
    (hot data is what gets read); the requestor is the node with the most
    available bandwidth outside the stripe.
    """
    rng = np.random.default_rng(seed)
    members = sorted(
        rng.choice(trace.node_count, size=n, replace=False).tolist()
    )
    usage = trace.used_node_bandwidth()[:, int(instant)]
    failed = max(members, key=lambda node: usage[node])
    survivors = [node for node in members if node != failed]
    outside = [
        node for node in range(trace.node_count) if node not in members
    ]
    available = trace.available_node_bandwidth()[:, int(instant)]
    requestor = max(outside, key=lambda node: available[node])
    return requestor, survivors


def run_cell(
    trace: WorkloadTrace,
    network,
    n: int,
    k: int,
    scheme: str,
    config: ExecutionConfig | None = None,
    instants: int = INSTANTS_PER_CELL,
    tracer=NULL_TRACER,
) -> CellResult:
    """Run one (workload, code, scheme) cell and average its timings."""
    config = config or ExecutionConfig()
    planner = make_planner(scheme)
    planning, transfer = [], []
    for index, instant in enumerate(
        congested_instants(trace, instants, seed=n * 100 + k)
    ):
        requestor, survivors = stripe_nodes_at(
            trace, instant, n, seed=1000 * index + n * 10 + k
        )
        result = repair_single_chunk(
            planner, network, requestor, survivors, k,
            start_time=instant, config=config, tracer=tracer,
        )
        planning.append(result.planning_seconds)
        transfer.append(result.transfer_seconds)
    return CellResult(
        planning_seconds=mean(planning), transfer_seconds=mean(transfer)
    )


def run_figure5(
    workload_traces: dict[str, WorkloadTrace],
    workload_networks: dict,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    tracer=NULL_TRACER,
) -> dict:
    """All Figure 5 cells: results[workload][(n, k)][scheme] -> CellResult."""
    results: dict = {}
    for name, trace in workload_traces.items():
        network = workload_networks[name]
        results[name] = {}
        for n, k in settings.codes:
            results[name][(n, k)] = {
                scheme: run_cell(
                    trace, network, n, k, scheme, tracer=tracer
                )
                for scheme in SCHEMES
            }
    return results
