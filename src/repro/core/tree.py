"""Pipelined repair tree.

A repair tree is rooted at the requestor; every other node is a helper.
Leaves stream their (coefficient-scaled) chunk upward; each non-leaf node
XOR-aggregates its children's partial results with its own chunk and streams
the sum to its parent (Section II-B linearity).  Every edge therefore carries
exactly one chunk's worth of bytes.

The bottleneck bandwidth ``B_min`` follows Lemma 1:

    B_min = min( min over non-leaf nodes of prac(i),
                 min over leaf nodes of up(i) )

with ``prac(i) = min(up(i), down(i) / c_i)`` for a non-leaf helper with
``c_i`` children, and ``prac(root) = down(root) / c_root`` (the requestor
never uploads during the repair, cf. the Lemma 2 base case).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.exceptions import PlanningError


class RepairTree:
    """Immutable-ish rooted tree given as child -> parent pointers."""

    def __init__(self, root: int, parents: Mapping[int, int]):
        self.root = root
        self._parents = dict(parents)
        self._children: dict[int, list[int]] = {root: []}
        for child in self._parents:
            self._children.setdefault(child, [])
        for child, parent in self._parents.items():
            if child == root:
                raise PlanningError("the root cannot have a parent")
            if parent not in self._children:
                raise PlanningError(
                    f"parent {parent} of node {child} is not in the tree"
                )
            self._children[parent].append(child)
        self._validate_connected()

    def _validate_connected(self) -> None:
        seen = set()
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            if node in seen:
                raise PlanningError(f"cycle detected at node {node}")
            seen.add(node)
            frontier.extend(self._children[node])
        if seen != set(self._children):
            orphans = set(self._children) - seen
            raise PlanningError(f"nodes unreachable from root: {orphans}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def helpers(self) -> list[int]:
        """All non-root nodes (the k helpers), sorted."""
        return sorted(self._parents)

    def parent(self, node: int) -> int | None:
        if node == self.root:
            return None
        try:
            return self._parents[node]
        except KeyError:
            raise PlanningError(f"node {node} not in tree") from None

    def children(self, node: int) -> list[int]:
        try:
            return list(self._children[node])
        except KeyError:
            raise PlanningError(f"node {node} not in tree") from None

    def child_count(self, node: int) -> int:
        return len(self.children(node))

    def leaves(self) -> list[int]:
        return sorted(
            node
            for node, kids in self._children.items()
            if not kids and node != self.root
        )

    def non_leaf_helpers(self) -> list[int]:
        return sorted(
            node
            for node, kids in self._children.items()
            if kids and node != self.root
        )

    def edges(self) -> list[tuple[int, int]]:
        """Directed (child, parent) transfer edges, child uploads to parent."""
        return sorted(self._parents.items())

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges (pipeline stages)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in self._children[node]:
                stack.append((child, d + 1))
        return best

    def __len__(self) -> int:
        return len(self._children)

    def __contains__(self, node: int) -> bool:
        return node in self._children

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RepairTree):
            return NotImplemented
        return self.root == other.root and self._parents == other._parents

    def __hash__(self) -> int:
        return hash((self.root, frozenset(self._parents.items())))

    def __repr__(self) -> str:
        return f"RepairTree(root={self.root}, parents={self._parents!r})"

    def render(self) -> str:
        """Multi-line ASCII rendering for logs and examples."""
        lines: list[str] = []

        def walk(node: int, prefix: str, is_last: bool) -> None:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + f"N{node}")
            kids = sorted(self._children[node])
            child_prefix = prefix + ("    " if is_last else "│   ")
            for i, child in enumerate(kids):
                walk(child, child_prefix, i == len(kids) - 1)

        lines.append(f"N{self.root} (requestor)")
        kids = sorted(self._children[self.root])
        for i, child in enumerate(kids):
            walk(child, "", i == len(kids) - 1)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Bandwidth (Lemma 1)
    # ------------------------------------------------------------------
    def node_bottleneck(self, snapshot: BandwidthSnapshot, node: int) -> float:
        """This node's contribution to B_min under the snapshot."""
        kids = self.children(node)
        if node == self.root:
            if not kids:
                raise PlanningError("the root must have at least one child")
            return snapshot.down_of(node) / len(kids)
        if not kids:
            return snapshot.up_of(node)
        return min(
            snapshot.up_of(node), snapshot.down_of(node) / len(kids)
        )

    def bmin(self, snapshot: BandwidthSnapshot) -> float:
        """Bottleneck (minimum) bandwidth of the pipelined tree."""
        return min(
            self.node_bottleneck(snapshot, node) for node in self._children
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def chain(cls, root: int, order: Iterable[int]) -> RepairTree:
        """A chain pipeline: order[0] -> root, order[1] -> order[0], ..."""
        parents = {}
        previous = root
        for node in order:
            parents[node] = previous
            previous = node
        if not parents:
            raise PlanningError("a chain needs at least one helper")
        return cls(root, parents)

    @classmethod
    def star(cls, root: int, helpers: Iterable[int]) -> RepairTree:
        """All helpers directly under the root (conventional repair shape)."""
        parents = {node: root for node in helpers}
        if not parents:
            raise PlanningError("a star needs at least one helper")
        return cls(root, parents)
