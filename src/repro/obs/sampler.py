"""Flight recorder: a low-overhead periodic sampler for the fluid simulator.

The event tracer (:mod:`repro.obs.tracer`) answers "what happened"; the
flight recorder answers "what was the network doing while it happened".
A :class:`FlightRecorder` attached to a
:class:`~repro.network.simulator.FluidSimulator` records aligned time
series at a fixed simulated-time interval:

* per-node uplink/downlink **rates** (bytes/s) and **utilization**
  (rate over the link's capacity at sample time);
* per-traffic-class aggregate rates (``repair`` vs ``foreground``), so
  interference is visible without re-deriving it from flow events;
* active-task counts per class;
* the repair QoS governor's current rate cap (fed by the orchestrators
  through :meth:`note_governor_cap`).

Because the fluid model is piecewise constant between events, sampling
is exact: the recorder is invoked once per simulator advance with the
window ``[start, end)`` and the live entity set, computes the per-node
rates once, and replays them onto every sample tick the window crosses.
Capacities are likewise constant inside a window (an advance never
crosses a capacity breakpoint), so one ``capacities_at`` call covers all
ticks in it.

The recorder is **off by default** — ``FluidSimulator`` carries a
``sampler=None`` slot and its advance loop pays exactly one ``is not
None`` guard per step when disabled.  Samples live in a bounded ring
buffer (oldest dropped first, ``dropped`` counts evictions) and are
deterministic for a fixed seed: timestamps are simulated time and every
serialised mapping is key-sorted.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import SimulationError

__all__ = ["Sample", "FlightRecorder", "samples_from_jsonl"]

#: Default sampling period, simulated seconds.
DEFAULT_INTERVAL = 0.25

#: Default ring-buffer capacity (samples kept).
DEFAULT_CAPACITY = 4096

#: Tick-alignment slack for floating-point clock arithmetic.
_EPS = 1e-9


@dataclass(frozen=True)
class Sample:
    """One aligned observation of the simulator's instantaneous state."""

    t: float
    #: Per-node uplink / downlink rates, bytes/s (only nodes with flow).
    up: dict[int, float] = field(default_factory=dict)
    down: dict[int, float] = field(default_factory=dict)
    #: Per-node utilization = rate / capacity at ``t`` (same key sets).
    up_util: dict[int, float] = field(default_factory=dict)
    down_util: dict[int, float] = field(default_factory=dict)
    #: Aggregate per-class rate over all edges, bytes/s.
    rate_by_kind: dict[str, float] = field(default_factory=dict)
    #: Live task count per traffic class.
    active_by_kind: dict[str, int] = field(default_factory=dict)
    #: Governor per-repair-flow rate cap in force (None = uncapped).
    repair_cap: float | None = None

    def to_dict(self) -> dict:
        """Deterministic plain-dict form (JSONL line payload)."""
        payload: dict = {"t": self.t}
        for name in ("up", "down", "up_util", "down_util"):
            series = getattr(self, name)
            if series:
                payload[name] = {
                    str(node): value for node, value in sorted(series.items())
                }
        if self.rate_by_kind:
            payload["rate_by_kind"] = dict(sorted(self.rate_by_kind.items()))
        if self.active_by_kind:
            payload["active_by_kind"] = dict(
                sorted(self.active_by_kind.items())
            )
        if self.repair_cap is not None:
            payload["repair_cap"] = self.repair_cap
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> Sample:
        def nodes(name: str) -> dict[int, float]:
            return {
                int(node): float(value)
                for node, value in raw.get(name, {}).items()
            }

        return cls(
            t=float(raw["t"]),
            up=nodes("up"),
            down=nodes("down"),
            up_util=nodes("up_util"),
            down_util=nodes("down_util"),
            rate_by_kind={
                kind: float(v)
                for kind, v in raw.get("rate_by_kind", {}).items()
            },
            active_by_kind={
                kind: int(v)
                for kind, v in raw.get("active_by_kind", {}).items()
            },
            repair_cap=raw.get("repair_cap"),
        )


class FlightRecorder:
    """Periodic sampler bound to one simulator run.

    Args:
        interval: sampling period in simulated seconds.
        capacity: ring-buffer size; the oldest samples are evicted once
            full (``dropped`` counts how many).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        tsdb=None,
    ):
        if interval <= 0:
            raise SimulationError("sampling interval must be positive")
        if capacity < 1:
            raise SimulationError("ring capacity must be >= 1")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.samples: deque[Sample] = deque(maxlen=self.capacity)
        self.dropped = 0
        self.sim = None
        self._next_tick = math.inf
        self._cap: float | None = None
        #: Optional :class:`~repro.obs.timeseries.TimeSeriesDB` every
        #: sample is mirrored into as labeled series.
        self.tsdb = tsdb
        #: ``fn(t)`` callbacks invoked once per sample tick — the
        #: deterministic evaluation grid for live consumers (SLO
        #: monitor, dashboard refresh).
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Simulator protocol
    # ------------------------------------------------------------------
    def bind(self, sim) -> FlightRecorder:
        """Attach to the simulator driving the run (once)."""
        if self.sim is not None:
            raise SimulationError(
                "flight recorder is already bound to a simulator"
            )
        self.sim = sim
        self._next_tick = sim.now
        return self

    def note_governor_cap(self, cap: float | None) -> None:
        """Record the governor's current per-repair-flow rate cap."""
        self._cap = cap

    def attach_tsdb(self, tsdb) -> FlightRecorder:
        """Mirror every future sample into ``tsdb`` as labeled series."""
        self.tsdb = tsdb
        return self

    def add_listener(self, listener) -> None:
        """Invoke ``listener(t)`` once per sample tick, in order."""
        self._listeners.append(listener)

    def on_window(self, start: float, end: float, entities) -> None:
        """Sample every tick inside the advance window ``[start, end]``.

        Called by the simulator once per event-loop step, *before* the
        clock moves, with the live entity collection whose rates held
        over the window.  Rates and capacities are piecewise constant
        inside a window, so they are computed once and reused for every
        tick it covers.
        """
        if self._next_tick > end + _EPS:
            return
        up: dict[int, float] = {}
        down: dict[int, float] = {}
        rate_by_kind: dict[str, float] = {}
        active_by_kind: dict[str, int] = {}
        for entity in entities:
            active_by_kind[entity.kind] = (
                active_by_kind.get(entity.kind, 0) + 1
            )
            if entity.rate <= 0:
                continue
            rate_by_kind[entity.kind] = (
                rate_by_kind.get(entity.kind, 0.0)
                + entity.rate * len(entity.edges)
            )
            for (resource, node), coefficient in entity.usage.items():
                if resource == "up":
                    up[node] = up.get(node, 0.0) + coefficient * entity.rate
                elif resource == "down":
                    down[node] = (
                        down.get(node, 0.0) + coefficient * entity.rate
                    )
        capacities = self.sim.network.capacities_at(start)

        def utilization(series: dict[int, float], direction: str):
            out = {}
            for node, rate in series.items():
                cap = capacities.get((direction, node), 0.0)
                out[node] = rate / cap if cap > 0 else math.inf
            return out

        up_util = utilization(up, "up")
        down_util = utilization(down, "down")
        while self._next_tick <= end + _EPS:
            if len(self.samples) == self.capacity:
                self.dropped += 1
            sample = Sample(
                t=self._next_tick,
                up=dict(up),
                down=dict(down),
                up_util=dict(up_util),
                down_util=dict(down_util),
                rate_by_kind=dict(rate_by_kind),
                active_by_kind=dict(active_by_kind),
                repair_cap=self._cap,
            )
            self.samples.append(sample)
            if self.tsdb is not None:
                self._feed_tsdb(sample)
            for listener in self._listeners:
                listener(sample.t)
            self._next_tick += self.interval

    def _feed_tsdb(self, sample: Sample) -> None:
        """Mirror one sample into the attached TSDB as labeled series."""
        tsdb = self.tsdb
        t = sample.t
        for direction, series in (
            ("up", sample.up_util), ("down", sample.down_util)
        ):
            for node, value in series.items():
                tsdb.record(
                    "link_utilization", t, value,
                    node=node, direction=direction,
                )
        for kind, rate in sample.rate_by_kind.items():
            tsdb.record("class_rate", t, rate, kind=kind)
        for kind, count in sample.active_by_kind.items():
            tsdb.record("active_tasks", t, count, kind=kind)
        tsdb.record(
            "repair_cap", t,
            -1.0 if sample.repair_cap is None else sample.repair_cap,
        )

    # ------------------------------------------------------------------
    # Introspection and export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    def to_jsonl(self) -> str:
        """Serialise samples as JSON Lines (byte-identical across seeds)."""
        lines = [
            json.dumps(sample.to_dict(), separators=(",", ":"))
            for sample in self.samples
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def peak_utilization(self) -> dict[tuple[str, int], float]:
        """Highest observed utilization per (direction, node) link."""
        peaks: dict[tuple[str, int], float] = {}
        for sample in self.samples:
            for direction, series in (
                ("up", sample.up_util), ("down", sample.down_util)
            ):
                for node, value in series.items():
                    key = (direction, node)
                    if value > peaks.get(key, 0.0):
                        peaks[key] = value
        return peaks


def samples_from_jsonl(text: str) -> list[Sample]:
    """Parse a JSONL sample stream back into :class:`Sample` records."""
    samples = []
    for line in text.splitlines():
        if not line.strip():
            continue
        samples.append(Sample.from_dict(json.loads(line)))
    return samples
