"""Erasure-coding substrate: GF(2^8), Reed-Solomon, chunks, stripes."""

from repro.ec.chunk import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_SLICE_SIZE,
    ChunkId,
    join_slices,
    random_chunk,
    slice_count,
    split_slices,
)
from repro.ec.reed_solomon import RSCode
from repro.ec.stripe import Stripe, StripeStore, place_stripes

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_SLICE_SIZE",
    "ChunkId",
    "RSCode",
    "Stripe",
    "StripeStore",
    "join_slices",
    "place_stripes",
    "random_chunk",
    "slice_count",
    "split_slices",
]
