"""Unit helpers.

Internally the library uses **bytes** for sizes and **bytes/second** for
bandwidth.  The paper quotes Mb/s (megabits per second) and MiB/KiB sizes;
these helpers keep conversions explicit at API boundaries.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: One megabit per second, in bytes per second.
MBPS = 1_000_000 / 8

#: One gigabit per second, in bytes per second.
GBPS = 1_000_000_000 / 8


def mbps(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * MBPS


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * GBPS


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes/second to megabits/second."""
    return bytes_per_second / MBPS


def mib(value: float) -> int:
    """Convert MiB to bytes."""
    return int(value * MIB)


def kib(value: float) -> int:
    """Convert KiB to bytes."""
    return int(value * KIB)


def format_latency(seconds: float, micro: str = "µs") -> str:
    """Auto-scaled human duration: µs / ms / s.

    Latency-report formatting shared by :mod:`repro.reporting` and the
    CLI.  ``micro`` lets ASCII-only consumers swap the µs glyph.
    """
    if seconds != seconds:  # NaN: no observations yet
        return "n/a"
    if seconds < 0:
        return "-" + format_latency(-seconds, micro)
    if seconds >= 100:
        return f"{seconds:.3g} s"
    if seconds >= 0.1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} {micro}"
