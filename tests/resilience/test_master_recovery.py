"""Master crash recovery: journaled scheduling must replay idempotently.

The acceptance criterion: kill the master partway through a full-node
repair, recover from the journal, and end with exactly the adoptions an
uninterrupted run performs — no stripe repaired twice, no stripe lost.
Replaying a finished journal is a no-op that leaves every chunk byte on
every node untouched.
"""

import numpy as np
import pytest

from repro.cluster.master import Cluster
from repro.core import PivotRepairPlanner
from repro.ec import RSCode
from repro.network.topology import StarNetwork
from repro.resilience import (
    JournalError,
    RepairJournal,
    recover_full_node,
    run_full_node_journaled,
)

MiB = 1024 * 1024
NODE_COUNT = 10
CODE = RSCode(6, 4)
STRIPES = 5
FAILED = 0


def make_cluster(seed=21) -> Cluster:
    cluster = Cluster(NODE_COUNT, CODE)
    rng = np.random.default_rng(seed)
    cluster.write_random_stripes(STRIPES, 64 * 1024, rng)
    cluster.fail_node(FAILED)
    return cluster


def network():
    return StarNetwork.uniform(NODE_COUNT, 10 * MiB)


def snapshot_bytes(cluster: Cluster) -> dict:
    return {
        (node.node_id, chunk_id): node.read(chunk_id).tobytes()
        for node in cluster.nodes
        for chunk_id in node.chunk_ids()
    }


class TestMasterRecovery:
    def test_uninterrupted_run_adopts_all(self):
        cluster = make_cluster()
        lost = len(cluster.lost_chunks(FAILED))
        assert lost > 0
        journal = RepairJournal()
        result = run_full_node_journaled(
            cluster, PivotRepairPlanner(), network(), FAILED, journal
        )
        assert result.completed
        assert len(result.adopted) == lost
        assert journal.adopted_stripes() == set(result.queue)
        assert cluster.lost_chunks(FAILED) == []

    def test_crash_then_recover_matches_uninterrupted(self):
        baseline = make_cluster()
        base_journal = RepairJournal()
        base = run_full_node_journaled(
            baseline, PivotRepairPlanner(), network(), FAILED, base_journal
        )

        cluster = make_cluster()
        journal = RepairJournal()
        crashed = run_full_node_journaled(
            cluster, PivotRepairPlanner(), network(), FAILED, journal,
            crash_after=2,
        )
        assert crashed.crashed
        assert not crashed.completed
        assert len(crashed.adopted) == 2

        recovered = recover_full_node(
            cluster, PivotRepairPlanner(), network(), FAILED, journal
        )
        assert recovered.completed
        assert not recovered.crashed
        # Crash + recovery adopt exactly what one clean run adopts — the
        # same stripes, in the same checkpointed queue order.
        assert crashed.adopted + recovered.adopted == base.adopted
        assert recovered.queue == base.queue
        assert set(recovered.skipped) == set(crashed.adopted)
        assert snapshot_bytes(cluster) == snapshot_bytes(baseline)

    def test_second_replay_is_a_no_op(self):
        cluster = make_cluster()
        journal = RepairJournal()
        run_full_node_journaled(
            cluster, PivotRepairPlanner(), network(), FAILED, journal,
            crash_after=1,
        )
        recover_full_node(
            cluster, PivotRepairPlanner(), network(), FAILED, journal
        )
        before = snapshot_bytes(cluster)
        adopted_before = journal.adopted_stripes()
        again = recover_full_node(
            cluster, PivotRepairPlanner(), network(), FAILED, journal
        )
        assert again.completed
        assert again.adopted == []
        assert set(again.skipped) == adopted_before
        assert journal.adopted_stripes() == adopted_before
        assert snapshot_bytes(cluster) == before

    def test_checkpoint_survives_on_disk(self, tmp_path):
        path = tmp_path / "master.jsonl"
        cluster = make_cluster()
        with RepairJournal(path) as journal:
            run_full_node_journaled(
                cluster, PivotRepairPlanner(), network(), FAILED, journal,
                crash_after=2,
            )
        # The master process is gone; a fresh one loads the journal file
        # and finishes the queue.
        with RepairJournal.load(path) as loaded:
            recovered = recover_full_node(
                cluster, PivotRepairPlanner(), network(), FAILED, loaded
            )
        assert recovered.completed
        assert cluster.lost_chunks(FAILED) == []

    def test_recover_requires_checkpoint(self):
        cluster = make_cluster()
        with pytest.raises(JournalError):
            recover_full_node(
                cluster, PivotRepairPlanner(), network(), FAILED,
                RepairJournal(),
            )

    def test_checkpoint_for_other_node_rejected(self):
        cluster = make_cluster()
        journal = RepairJournal()
        run_full_node_journaled(
            cluster, PivotRepairPlanner(), network(), FAILED, journal,
            crash_after=1,
        )
        with pytest.raises(JournalError):
            run_full_node_journaled(
                cluster, PivotRepairPlanner(), network(), FAILED + 1,
                journal,
            )
