"""Foreground traffic: generators, the flow engine, and repair QoS.

See ``docs/foreground_traffic.md`` for the subsystem tour.  Typical use:

>>> profile = LoadProfile(arrival_rate=40.0, duration=30.0)
>>> requests = generate_requests(profile, stripes, node_count=16, seed=7)
>>> engine = ForegroundEngine(stripes, requests, planner,
...                           failed_nodes={failed})
>>> result = repair_full_node(..., foreground=engine,
...                           governor=make_governor("adaptive"))
"""

from repro.loadgen.engine import FOREGROUND, ForegroundEngine
from repro.loadgen.generator import (
    MODULATIONS,
    LoadProfile,
    generate_requests,
    rate_profile_from_trace,
    zipf_weights,
)
from repro.loadgen.governor import (
    AdaptiveSLOGovernor,
    NoGovernor,
    RepairQoSGovernor,
    StaticCapGovernor,
    make_governor,
)
from repro.loadgen.requests import READ, WRITE, ClientRequest, RequestOutcome

__all__ = [
    "FOREGROUND",
    "READ",
    "WRITE",
    "MODULATIONS",
    "ClientRequest",
    "RequestOutcome",
    "LoadProfile",
    "generate_requests",
    "rate_profile_from_trace",
    "zipf_weights",
    "ForegroundEngine",
    "RepairQoSGovernor",
    "NoGovernor",
    "StaticCapGovernor",
    "AdaptiveSLOGovernor",
    "make_governor",
]
