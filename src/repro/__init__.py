"""PivotRepair reproduction: fast pipelined repair for erasure-coded hot storage.

Reproduces Yao et al., "PivotRepair: Fast Pipelined Repair for Erasure-Coded
Hot Storage" (ICDCS 2022) as a pure-Python library:

* :mod:`repro.ec` — GF(2^8) Reed-Solomon coding (chunks, slices, stripes);
* :mod:`repro.network` — star-topology fluid network simulator with
  time-varying bandwidth and max-min fair sharing;
* :mod:`repro.traces` — synthetic TPC-DS / TPC-H / SWIM congestion traces
  and the paper's measurement analysis;
* :mod:`repro.core` — the contribution: pivots, Algorithm 1 repair trees,
  and the adaptive full-node scheduling strategy;
* :mod:`repro.baselines` — RP, PPT, PPR, and conventional repair;
* :mod:`repro.repair` — executing plans, timing, full-node orchestration;
* :mod:`repro.cluster` — byte-accurate Master/DataNode repair;
* :mod:`repro.obs` — structured event tracing, metrics, trace export.
"""

import logging

from repro.baselines import (
    ConventionalPlanner,
    PPRPlanner,
    PPTPlanner,
    RPPlanner,
)
from repro.cluster import Cluster, DataNode
from repro.core import (
    BandwidthSnapshot,
    ComputeAwarePlanner,
    ComputeView,
    PivotRepairPlanner,
    RackAwarePivotPlanner,
    RackSnapshot,
    RepairPlan,
    RepairPlanner,
    RepairTree,
    SchedulerConfig,
    build_pivot_tree,
)
from repro.ec import RSCode, Stripe
from repro.network import BandwidthTrace, FluidSimulator, RackNetwork, StarNetwork
from repro.obs import MetricsRegistry, Tracer, write_trace
from repro.repair import (
    ExecutionConfig,
    FullNodeResult,
    RepairResult,
    repair_full_node,
    repair_full_node_adaptive,
    repair_single_chunk,
)
from repro.traces import WorkloadTrace, generate_all, generate_trace

__version__ = "0.1.0"

# Library etiquette: never emit log records unless the application opts
# in (attaching a real handler); avoids "no handlers could be found".
logging.getLogger(__name__).addHandler(logging.NullHandler())

__all__ = [
    "BandwidthSnapshot",
    "BandwidthTrace",
    "Cluster",
    "ComputeAwarePlanner",
    "ComputeView",
    "ConventionalPlanner",
    "DataNode",
    "ExecutionConfig",
    "FluidSimulator",
    "FullNodeResult",
    "MetricsRegistry",
    "PPRPlanner",
    "PPTPlanner",
    "PivotRepairPlanner",
    "RPPlanner",
    "RackAwarePivotPlanner",
    "RackNetwork",
    "RackSnapshot",
    "RSCode",
    "RepairPlan",
    "RepairPlanner",
    "RepairResult",
    "RepairTree",
    "SchedulerConfig",
    "StarNetwork",
    "Stripe",
    "Tracer",
    "WorkloadTrace",
    "build_pivot_tree",
    "generate_all",
    "generate_trace",
    "repair_full_node",
    "repair_full_node_adaptive",
    "repair_single_chunk",
    "write_trace",
]
