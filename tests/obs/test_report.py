"""HTML report tests: self-contained output, sections, determinism."""

import numpy as np

from repro.core import PivotRepairPlanner
from repro.ec import RSCode, place_stripes
from repro.network.topology import StarNetwork
from repro.obs import (
    FlightRecorder,
    RunDiagnosis,
    Tracer,
    diagnose,
    render_html_report,
)
from repro.repair import repair_full_node
from repro.repair.pipeline import ExecutionConfig


def diagnosed_run():
    code = RSCode(6, 4)
    stripes = place_stripes(6, code, 10, np.random.default_rng(3))
    network = StarNetwork.constant([500.0] * 10, [800.0] * 10)

    class Pinned(PivotRepairPlanner):
        def plan(self, *args, **kwargs):
            plan = super().plan(*args, **kwargs)
            plan.planning_seconds = 0.0
            return plan

    tracer = Tracer()
    sampler = FlightRecorder(interval=0.5, capacity=65536)
    repair_full_node(
        Pinned(), network, stripes, stripes[0].placement[0],
        config=ExecutionConfig(
            chunk_size=10_000, slice_size=1000, per_slice_overhead=0.0
        ),
        tracer=tracer, sampler=sampler,
    )
    samples = list(sampler.samples)
    return diagnose(tracer.events, samples=samples, network=network), samples


class TestHtmlReport:
    def test_self_contained_document_with_sections(self):
        diagnosis, samples = diagnosed_run()
        html = render_html_report(diagnosis, samples=samples, title="t")
        assert html.startswith("<!doctype html>")
        assert "</html>" in html
        # Single-file: no external scripts, stylesheets, or images.
        assert "http://" not in html and "https://" not in html
        assert "src=" not in html
        for section in ("waterfall", "utilization", "invariants"):
            assert section in html.lower()
        assert "<svg" in html

    def test_empty_run_renders_without_samples(self):
        empty = RunDiagnosis(
            repairs=[], totals={}, bottleneck_seconds={},
            achieved_over_oracle=None, achieved_over_claimed=None,
        )
        html = render_html_report(empty)
        assert "</html>" in html

    def test_output_is_deterministic(self):
        first_diag, first_samples = diagnosed_run()
        second_diag, second_samples = diagnosed_run()
        assert render_html_report(
            first_diag, samples=first_samples
        ) == render_html_report(second_diag, samples=second_samples)

    def test_title_is_escaped(self):
        empty = RunDiagnosis(
            repairs=[], totals={}, bottleneck_seconds={},
            achieved_over_oracle=None, achieved_over_claimed=None,
        )
        html = render_html_report(empty, title="<script>alert(1)</script>")
        assert "<script>" not in html
