"""Fleet-level repair control plane: admission, backpressure, degradation.

One :class:`ControlPlane` arbitrates N concurrent full-node repair jobs
(:class:`~repro.repair.jobmaster.StripeRepairMaster`, one per failed
node) over a single shared :class:`~repro.network.simulator.FluidSimulator`:

* a global Eq. 3-style priority queue picks *which* admitted job's head
  stripe starts next (recommendation value across the whole fleet's
  running tasks, QoS-biased);
* the admission gate (:mod:`repro.controlplane.admission`) bounds
  concurrent repair streams and in-flight bytes, with priority aging so
  no queued job starves;
* the backpressure monitor (:mod:`repro.controlplane.backpressure`)
  sheds load — pausing the lowest-priority admitted job, checkpointed
  through the resilience journal so resume re-transfers nothing — when
  foreground SLOs burn or link saturation spreads;
* the degradation policy escalates repeatedly-faulted jobs to fewer
  helpers and coarser slices instead of letting them fail.

**Drain-order invariant**: every enqueued job eventually reaches a
terminal state — all of its stripes repaired or surfaced as clean
``RepairFailed`` — because (i) at least ``min_active_jobs`` admitted
jobs always keep running, (ii) a fleet that has gone idle force-starts
the best candidate below the Eq. 3 threshold after ``max_idle_wait``,
and (iii) paused jobs are force-resumed once no admitted job has work
left, even if pressure never formally relieves.
See docs/control_plane.md for the state machine.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field

from repro.core.scheduler import SchedulerConfig, recommendation_value
from repro.exceptions import ClusterError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.network.simulator import FluidSimulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.repair.jobmaster import StripeRepairMaster
from repro.repair.metrics import FullNodeResult
from repro.repair.pipeline import ExecutionConfig, remaining_bytes_per_edge

from repro.controlplane.admission import (
    AdmissionConfig,
    AdmissionController,
    QOS_CLASSES,
    QoSClass,
)
from repro.controlplane.backpressure import (
    BackpressureConfig,
    BackpressureMonitor,
)

__all__ = [
    "DegradationPolicy",
    "RepairJob",
    "FleetResult",
    "ControlPlane",
]


@dataclass(frozen=True)
class DegradationPolicy:
    """When do a job's fault requeues escalate its degradation level?

    Level 0 is normal planning; level 1 trims helper candidate sets to
    exactly ``k``; level 2 additionally coarsens slice width and caps
    the submit rate (see ``StripeRepairMaster``).  A job escalates one
    level per ``escalate_after`` cumulative fault-requeue events, up to
    ``max_level``; levels never relax within a run (a cluster sick
    enough to escalate does not deserve the benefit of the doubt
    mid-storm).
    """

    escalate_after: int = 2
    max_level: int = 2

    def __post_init__(self) -> None:
        if self.escalate_after < 0:
            raise ClusterError("escalate_after cannot be negative")
        if self.max_level < 0:
            raise ClusterError("max_level cannot be negative")

    def level_for(self, requeue_events: int) -> int:
        if self.escalate_after == 0:
            return 0
        return min(self.max_level, requeue_events // self.escalate_after)


@dataclass
class RepairJob:
    """One enqueued full-node repair and its control-plane state."""

    job_id: str
    index: int
    master: StripeRepairMaster
    qos: QoSClass
    enqueued_at: float
    #: ``queued`` → ``admitted`` ⇄ ``paused`` → ``done``.
    state: str = "queued"
    admitted_at: float | None = None
    result: FullNodeResult | None = None

    @property
    def terminal(self) -> bool:
        return self.state == "done"


@dataclass
class FleetResult:
    """Outcome of a control-plane run."""

    total_seconds: float
    #: job_id -> per-job outcome, in enqueue order.
    jobs: dict[str, FullNodeResult] = field(default_factory=dict)
    #: job_id -> True once the job drained (all stripes repaired/failed).
    completed: dict[str, bool] = field(default_factory=dict)
    #: job_id -> QoS class name.
    qos: dict[str, str] = field(default_factory=dict)
    #: The admission controller's deterministic decision log.
    decisions: list[dict] = field(default_factory=list)

    def decision_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.decisions:
            counts[entry["action"]] = counts.get(entry["action"], 0) + 1
        return dict(sorted(counts.items()))

    @property
    def chunks_repaired(self) -> int:
        return sum(r.chunks_repaired for r in self.jobs.values())

    @property
    def chunks_failed(self) -> int:
        return sum(r.chunks_failed for r in self.jobs.values())


class ControlPlane:
    """Run N repair jobs over one simulator under admission control."""

    def __init__(
        self,
        sim: FluidSimulator,
        network,
        *,
        scheduler: SchedulerConfig | None = None,
        admission: AdmissionConfig | None = None,
        backpressure: BackpressureConfig | None = None,
        degradation: DegradationPolicy | None = None,
        faults: FaultPlan | None = None,
        tracer=NULL_TRACER,
        foreground=None,
        governor=None,
        slo_monitor=None,
        journal=None,
        qos_dispatch_bias: float = 0.0,
    ):
        self.sim = sim
        #: Fault-wrapped topology shared by every master (wrap once —
        #: the caller passes ``FaultyNetwork.wrap(network, faults)``).
        self.network = network
        self.scheduler = scheduler or SchedulerConfig()
        self.admission = AdmissionController(admission)
        self.backpressure = BackpressureMonitor(backpressure, slo_monitor)
        self.degradation = degradation or DegradationPolicy()
        self.faults = faults
        self.tracer = tracer
        self.foreground = foreground
        self.governor = governor
        self.journal = journal
        #: Weight turning effective priority into a recommendation-value
        #: bonus at dispatch.  0 (default) keeps dispatch purely Eq. 3 —
        #: QoS then acts through admission and shed order only.
        self.qos_dispatch_bias = qos_dispatch_bias
        self.registry = MetricsRegistry()
        #: One injector for the whole fleet; per-master drivers are
        #: re-pointed at it so a fault event announces exactly once.
        self.injector = FaultInjector(
            faults if faults is not None else FaultPlan.none(),
            tracer, self.registry,
        )
        self.jobs: list[RepairJob] = []
        self._owner: dict[int, StripeRepairMaster] = {}
        self._idle_since: float | None = None
        self._dead_nodes: set[int] = set()
        if foreground is not None:
            foreground.bind(sim, network)

    # ------------------------------------------------------------------
    # Job intake
    # ------------------------------------------------------------------
    def add_job(
        self,
        job_id: str,
        planner,
        stripes,
        failed_node: int,
        qos: str | QoSClass = "silver",
        *,
        config: ExecutionConfig | None = None,
        retry_policy=None,
    ) -> RepairJob:
        """Enqueue one full-node repair; it starts only when admitted."""
        if any(job.job_id == job_id for job in self.jobs):
            raise ClusterError(f"duplicate job id {job_id!r}")
        if isinstance(qos, str):
            try:
                qos = QOS_CLASSES[qos]
            except KeyError:
                raise ClusterError(
                    f"unknown QoS class {qos!r}; "
                    f"expected one of {sorted(QOS_CLASSES)}"
                ) from None
        master = StripeRepairMaster(
            job_id, planner, self.network, stripes, failed_node,
            sim=self.sim, config=config, tracer=self.tracer,
            faults=self.faults, retry_policy=retry_policy,
            journal=self.journal,
        )
        master.driver.advance = self._routed_advance
        master.driver.injector = self.injector
        if self.foreground is not None:
            master.on_chunk_repaired = self.foreground.note_repaired
        job = RepairJob(
            job_id=job_id, index=len(self.jobs), master=master, qos=qos,
            enqueued_at=self.sim.now,
        )
        self.jobs.append(job)
        self.admission.record(
            self.sim.now, "enqueue", job, qos=qos.name,
            stripes=len(master.pending),
        )
        return job

    # ------------------------------------------------------------------
    # Clock plumbing: every advance routes completions to their owner
    # ------------------------------------------------------------------
    def _routed_advance(self, t: float) -> list:
        """Advance the shared clock to ``t``; deliver completions.

        Installed as every master's ``driver.advance`` hook, so a
        detection window opened by one job still completes and delivers
        *another* job's tasks.  Returns ``[]`` — ownership routing
        already collected everything.
        """
        if self.foreground is not None:
            done = self.foreground.drive_to(t)
        else:
            done = self.sim.advance_to(t)
        self._route(done)
        return []

    def _run_until_event(self, bound: float) -> None:
        if self.foreground is not None:
            done = self.foreground.run_until_repair_event(max_time=bound)
        else:
            done = self.sim.run_until_completion(max_time=bound)
        self._route(done)
        if self.sim.now < bound and not done:
            # Nothing live could advance the clock (fleet fully idle):
            # jump to the bound so aging/backpressure still make progress.
            self._routed_advance(bound)

    def _route(self, handles) -> None:
        for handle in handles:
            master = self._owner.pop(handle.task_id, None)
            if master is not None:
                master.collect([handle])

    def _reconcile_owners(self) -> None:
        """Drop ownership of tasks their master no longer tracks.

        Fault ticks and pauses cancel tasks inside the master; the
        cancelled ids will never complete, so routing entries for them
        are dead weight.
        """
        self._owner = {
            task_id: master
            for task_id, master in self._owner.items()
            if task_id in master.in_flight
        }

    # ------------------------------------------------------------------
    # Control steps
    # ------------------------------------------------------------------
    def _admitted(self) -> list[RepairJob]:
        return [job for job in self.jobs if job.state == "admitted"]

    def _paused(self) -> list[RepairJob]:
        return [job for job in self.jobs if job.state == "paused"]

    def _queued(self) -> list[RepairJob]:
        return [job for job in self.jobs if job.state == "queued"]

    def _active_streams(self) -> int:
        return sum(len(job.master.in_flight) for job in self._admitted())

    def _tick_faults(self) -> None:
        self.injector.announce_until(self.sim.now)
        if self.faults is not None:
            dead = self.faults.dead_nodes(self.sim.now)
            newly = dead - self._dead_nodes
            if newly:
                self._dead_nodes = dead
                if self.foreground is not None and hasattr(
                    self.foreground, "abort_flows_touching"
                ):
                    # Flows already crossing a crashed node sit at zero
                    # rate forever; kill them so the drain terminates.
                    aborted = self.foreground.abort_flows_touching(newly)
                    if aborted and self.tracer.enabled:
                        self.tracer.instant(
                            "plane.fg_abort", t=self.sim.now, track="plane",
                            nodes=sorted(newly), flows=aborted,
                        )
        for job in self._admitted():
            job.master.tick()
            level = self.degradation.level_for(job.master.requeue_events)
            if job.master.degrade_to(level):
                self.admission.record(
                    self.sim.now, "degrade", job, level=level,
                    requeues=job.master.requeue_events,
                )
        self._reconcile_owners()

    def _apply_governor(self) -> float | None:
        if self.governor is None:
            return None
        cap = self.governor.repair_rate_cap(self.sim.now, self.foreground)
        if self.sim.sampler is not None:
            self.sim.sampler.note_governor_cap(cap)
        for job in self._admitted():
            for flight in job.master.in_flight.values():
                self.sim.set_task_max_rate(flight.handle, cap)
        self.registry.gauge("repair_rate_cap").set(
            -1.0 if cap is None else cap
        )
        return cap

    def _backpressure_step(self) -> None:
        now = self.sim.now
        admitted = self._admitted()
        paused = self._paused()
        overloaded, detail = self.backpressure.overloaded(self.sim)
        min_active = self.backpressure.config.min_active_jobs
        if overloaded and len(admitted) > min_active:
            # Shed one job per evaluation — gentle, hysteresis does the
            # rest.  Only jobs actually holding streams relieve pressure.
            candidates = [j for j in admitted if j.master.in_flight]
            victim = self.admission.pick_shed(candidates or admitted, now)
            if victim is not None:
                released = victim.master.pause()
                victim.state = "paused"
                self._reconcile_owners()
                self.admission.record(
                    now, "shed", victim,
                    breadth=round(detail["breadth"], 6),
                    firing=detail["firing"],
                    released_bytes=released,
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "plane.shed", t=now, track="plane",
                        job=victim.job_id, breadth=detail["breadth"],
                        firing=detail["firing"],
                    )
            return
        if not paused:
            return
        relieved, detail = self.backpressure.relieved(self.sim)
        admitted_runnable = any(
            job.master.pending or job.master.in_flight for job in admitted
        )
        if not relieved and admitted_runnable:
            return
        # Relieved — or nothing admitted can run anymore, in which case
        # the drain-order invariant forces a resume regardless.
        job = self.admission.pick_resume(paused, now)
        if job is None:
            return
        job.state = "admitted"
        job.master.note_resumed()
        self.admission.record(
            now, "resume" if relieved else "resume_forced", job,
            breadth=round(detail["breadth"], 6), firing=detail["firing"],
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "plane.resume", t=now, track="plane", job=job.job_id,
                forced=not relieved,
            )

    def _admission_step(self) -> None:
        now = self.sim.now
        while True:
            queued = self._queued()
            if not queued:
                return
            held = len(self._admitted()) + len(self._paused())
            if not self.admission.may_admit_job(held):
                return
            job = self.admission.pick_admit(queued, now)
            job.state = "admitted"
            job.admitted_at = now
            self.admission.record(
                now, "admit", job,
                priority=self.admission.effective_priority(job, now),
                waited=now - job.enqueued_at,
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    "plane.admit", t=now, track="plane", job=job.job_id,
                    qos=job.qos.name, waited=now - job.enqueued_at,
                )

    def _dispatch(self, cap: float | None) -> None:
        """Start admitted jobs' head stripes while tokens and Eq. 3 allow."""
        while True:
            streams = self._active_streams()
            inflight = self.sim.inflight_bytes(kind="repair")
            if not self.admission.may_start_stream(streams, inflight, 0.0):
                return
            candidates = []
            running = [
                task
                for job in self._admitted()
                for task in job.master.running_tasks()
            ]
            for job in self._admitted():
                if not job.master.pending:
                    continue
                planned = job.master.candidate()
                if planned is None:
                    continue
                stripe, plan = planned
                value = recommendation_value(
                    plan.tree, plan.bmin, running, self.sim.now,
                    self.scheduler, tracer=self.tracer,
                )
                bias = self.qos_dispatch_bias * (
                    self.admission.effective_priority(job, self.sim.now)
                )
                candidates.append((value + bias, -job.index, job,
                                   stripe, plan))
            if not candidates:
                return
            candidates.sort(key=lambda c: (c[0], c[1]), reverse=True)
            score, _, job, stripe, plan = candidates[0]
            if self.tracer.enabled:
                self.tracer.instant(
                    "plane.round", t=self.sim.now, track="plane",
                    candidates=len(candidates), streams=streams,
                    best_job=job.job_id,
                    best_stripe=stripe.stripe_id, best_value=score,
                )
            if score < self.scheduler.threshold:
                if streams > 0:
                    return
                if self._idle_since is None:
                    self._idle_since = self.sim.now
                if (
                    self.sim.now - self._idle_since
                    < self.scheduler.max_idle_wait
                ):
                    return
                # Idle too long below threshold: force-start the best
                # candidate so the fleet always drains.
            self._idle_since = None
            if not self.admission.may_start_stream(
                streams, inflight, self._plan_bytes(job, stripe, plan),
            ):
                return
            planning_span = job.master.book.begin_planning(
                stripe.stripe_id, self.sim.now
            )
            self._routed_advance(
                self.sim.now + plan.effective_planning_seconds
            )
            job.master.book.end_planning(
                planning_span, stripe.stripe_id, self.sim.now
            )
            # The detection window may have killed or finished things;
            # re-check the stripe is still this master's to start.
            if stripe not in job.master.pending:
                continue
            flight = job.master.submit(
                stripe, plan, max_rate=cap, planning_span=planning_span,
            )
            self._owner[flight.handle.task_id] = job.master
            self.admission.record(
                self.sim.now, "start", job, stripe=stripe.stripe_id,
                value=score, start_slice=flight.start_slice,
            )

    def _plan_bytes(self, job, stripe, plan) -> float:
        """Bytes the stripe's submission would put in flight."""
        config = job.master._config_for(stripe)
        depth = plan.tree.depth() if plan.tree is not None else 1
        start = job.master.driver.resume_slice(stripe, plan)
        per_edge = remaining_bytes_per_edge(config, depth, start)
        edges = len(plan.tree.edges()) if plan.tree is not None else 1
        return per_edge * edges

    def _finalize_done(self) -> None:
        for job in self.jobs:
            if job.state in ("admitted", "paused") and job.master.done:
                job.state = "done"
                job.result = job.master.build_result()
                self.admission.record(
                    self.sim.now, "complete", job,
                    repaired=len(job.master.results),
                    failed=len(job.master.failures),
                )
                if job.master.journal is not None:
                    job.master.journal.append(
                        "job_done", t=self.sim.now,
                        repaired=len(job.master.results),
                        failed=len(job.master.failures),
                    )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "plane.complete", t=self.sim.now, track="plane",
                        job=job.job_id,
                        repaired=len(job.master.results),
                        failed=len(job.master.failures),
                    )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_time: float = math.inf) -> FleetResult:
        """Drive every job to a terminal state (bounded by ``max_time``)."""
        if not self.jobs:
            raise ClusterError("control plane has no jobs to run")
        start = self.sim.now
        with contextlib.ExitStack() as stack:
            for planner in dict.fromkeys(
                job.master.planner for job in self.jobs
            ):
                stack.enter_context(planner.traced(self.tracer))
            while not all(job.terminal for job in self.jobs):
                self._tick_faults()
                cap = self._apply_governor()
                self._backpressure_step()
                self._admission_step()
                self._dispatch(cap)
                self._finalize_done()
                if all(job.terminal for job in self.jobs):
                    break
                if self.sim.now >= max_time:
                    break
                self._run_until_event(self._event_bound(max_time))
                self._finalize_done()
        result = FleetResult(
            total_seconds=self.sim.now - start,
            decisions=list(self.admission.decisions),
        )
        for job in self.jobs:
            outcome = job.result if job.result is not None \
                else job.master.build_result()
            result.jobs[job.job_id] = outcome
            result.completed[job.job_id] = job.master.done
            result.qos[job.job_id] = job.qos.name
        return result

    def _event_bound(self, max_time: float) -> float:
        bound = self.sim.now + self.backpressure.config.check_interval
        for job in self._admitted():
            bound = min(
                bound,
                job.master.driver.run_bound(job.master.in_flight),
            )
        if self.governor is not None and math.isfinite(
            self.governor.decision_interval
        ):
            bound = min(bound, self.sim.now + self.governor.decision_interval)
        return min(bound, max_time)
