"""PivotRepair core: bandwidth views, repair trees, Algorithm 1, scheduling."""

from repro.core.algorithm import (
    PivotRepairPlanner,
    build_pivot_tree,
    insert_pivots,
    replace_leaves,
    select_pivots,
)
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.compute import (
    ComputeAwarePlanner,
    ComputeView,
    timeslot_schedule,
)
from repro.core.plan import RepairPlan, RepairPlanner
from repro.core.rack_aware import (
    RackAwarePivotPlanner,
    RackSnapshot,
    rack_bmin,
)
from repro.core.scheduler import SchedulerConfig, recommendation_value
from repro.core.seeding import child_seed_sequence, rng_from, spawn_rng
from repro.core.tree import RepairTree

__all__ = [
    "BandwidthSnapshot",
    "ComputeAwarePlanner",
    "ComputeView",
    "PivotRepairPlanner",
    "RackAwarePivotPlanner",
    "RackSnapshot",
    "RepairPlan",
    "RepairPlanner",
    "RepairTree",
    "SchedulerConfig",
    "child_seed_sequence",
    "rack_bmin",
    "rng_from",
    "spawn_rng",
    "recommendation_value",
    "timeslot_schedule",
    "build_pivot_tree",
    "insert_pivots",
    "replace_leaves",
    "select_pivots",
]
