"""Slice-level discrete simulation of a pipelined repair tree.

The fluid executor models a pipelined repair as one coupled flow at the
tree's bottleneck rate plus a closed-form fill correction.  This module
validates that abstraction from below: it simulates the *actual* mechanism
of Section IV-D — the chunk split into slices, each node forwarding slice
``i`` to its parent only after receiving slice ``i`` from all of its
children, every edge serialising its slices at its share of the parent's
downlink.

Bandwidths are taken from a static snapshot (the regime of Experiments 4
and 5, "a fixed bandwidth situation").  The recurrence per edge
``child -> parent``::

    finish[child][i] = max(arrive[child][i], finish[child][i-1])
                       + slice_size / rate(child -> parent) + overhead

with ``arrive[node][i]`` the time slice ``i`` is fully aggregated at
``node`` (max over its children's ``finish``; 0 for leaves, which hold
their own data), and the repair completes at ``arrive[root][S-1]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.tree import RepairTree
from repro.exceptions import SimulationError
from repro.obs.tracer import NULL_TRACER
from repro.repair.pipeline import ExecutionConfig


def edge_rate(
    snapshot: BandwidthSnapshot, tree: RepairTree, child: int
) -> float:
    """Static rate of the edge child -> parent(child).

    The parent's downlink is shared evenly among its children, matching
    the fluid model's fan-in coefficient (Figure 1(d)).
    """
    parent = tree.parent(child)
    if parent is None:
        raise SimulationError(f"node {child} is the root; no upward edge")
    share = snapshot.down_of(parent) / tree.child_count(parent)
    return min(snapshot.up_of(child), share)


def _solve(
    tree: RepairTree,
    snapshot: BandwidthSnapshot,
    config: ExecutionConfig,
    start_slice: int,
) -> tuple[dict[int, list[float]], dict[int, list[float]], dict[int, float], int]:
    """Solve the slice recurrence; returns (arrive, finish, per_slice, S)."""
    if not 0 <= start_slice < config.slices:
        raise SimulationError(
            f"start_slice must be in [0, {config.slices}), got {start_slice}"
        )
    slices = config.slices - start_slice
    slice_seconds: dict[int, float] = {}
    for helper in tree.helpers:
        rate = edge_rate(snapshot, tree, helper)
        if rate <= 0:
            raise SimulationError(
                f"edge from node {helper} has zero bandwidth"
            )
        slice_seconds[helper] = (
            config.slice_size / rate + config.per_slice_overhead
        )

    # Post-order walk: children's finish times feed the parent's arrivals.
    order: list[int] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(tree.children(node))
    order.reverse()  # children before parents

    finish: dict[int, list[float]] = {}
    arrive: dict[int, list[float]] = {}
    for node in order:
        kids = tree.children(node)
        if kids:
            arrivals = [
                max(finish[child][i] for child in kids)
                for i in range(slices)
            ]
        else:
            arrivals = [0.0] * slices
        arrive[node] = arrivals
        if node == tree.root:
            continue
        per_slice = slice_seconds[node]
        out = []
        previous = 0.0
        for i in range(slices):
            previous = max(arrivals[i], previous) + per_slice
            out.append(previous)
        finish[node] = out
    return arrive, finish, slice_seconds, slices


def simulate_slices(
    tree: RepairTree,
    snapshot: BandwidthSnapshot,
    config: ExecutionConfig | None = None,
    start_slice: int = 0,
) -> float:
    """Transfer time of one pipelined single-chunk repair, slice level.

    ``start_slice`` simulates a resumed repair: only the remaining
    ``S - start_slice`` slices stream through the tree (the first
    ``start_slice`` slices are already verified at the requestor).
    """
    config = config or ExecutionConfig()
    arrive, _, _, slices = _solve(tree, snapshot, config, start_slice)
    return arrive[tree.root][slices - 1]


@dataclass(frozen=True)
class SliceSegment:
    """One slice transfer on the critical path of a pipelined repair.

    ``kind`` records why this segment started when it did: ``"arrive"``
    means the edge was waiting on the slice aggregating below it (the
    walk descends into the child subtree), ``"serial"`` means it was
    waiting on the same edge finishing the previous slice (the edge is
    the pipeline bottleneck at this point).
    """

    node: int
    parent: int
    slice_index: int
    start: float
    end: float
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def slice_critical_path(
    tree: RepairTree,
    snapshot: BandwidthSnapshot,
    config: ExecutionConfig | None = None,
    start_slice: int = 0,
    tracer=NULL_TRACER,
    parent_id: int | None = None,
) -> list[SliceSegment]:
    """Exact critical path of a slice-level pipelined repair.

    Walks backward from the last slice's arrival at the root.  At each
    point the predecessor of a transfer is either the previous slice on
    the same edge (serialisation) or the slice's arrival from below
    (descend into the child whose finish dominated the max).  Consecutive
    segments abut exactly, so their durations sum to ``simulate_slices``'s
    makespan with no float drift beyond summation order.

    With a live ``tracer``, each segment is emitted as a ``slice.xfer``
    span on track ``slice:<node>``, chained with ``links`` and parented
    under ``parent_id`` — slice-level drill-down under a repair span.
    """
    config = config or ExecutionConfig()
    arrive, finish, slice_seconds, slices = _solve(
        tree, snapshot, config, start_slice
    )
    segments: list[SliceSegment] = []
    # Start at the root's last arrival and descend into the winning child.
    node, i = tree.root, slices - 1
    while True:
        kids = tree.children(node)
        if not kids:
            break  # leaf arrival is t=0: the path is complete
        child = max(kids, key=lambda c: (finish[c][i], -c))
        # Follow the chain of transfers on edge child -> node backwards
        # while the edge's own serialisation (not the arrival from below)
        # is what gated each slice's start.
        while True:
            prev_finish = finish[child][i - 1] if i > 0 else 0.0
            start = max(arrive[child][i], prev_finish)
            kind = (
                "serial"
                if i > 0 and prev_finish >= arrive[child][i]
                else "arrive"
            )
            segments.append(
                SliceSegment(
                    node=child,
                    parent=node,
                    slice_index=i + start_slice,
                    start=start,
                    end=finish[child][i],
                    kind=kind,
                )
            )
            if kind != "serial":
                break
            i -= 1  # same edge, previous slice
        node = child  # descend toward the arrival that gated us
    segments.reverse()
    if tracer.enabled:
        previous_span: int | None = None
        for seg in segments:
            span = tracer.begin(
                "slice.xfer",
                t=seg.start,
                track=f"slice:{seg.node}",
                parent_id=parent_id,
                links=(previous_span,) if previous_span is not None else (),
                slice=seg.slice_index,
                to=seg.parent,
                kind=seg.kind,
            )
            tracer.end(
                "slice.xfer",
                t=seg.end,
                span_id=span,
                track=f"slice:{seg.node}",
            )
            previous_span = span
    return segments


def fluid_estimate(
    tree: RepairTree,
    snapshot: BandwidthSnapshot,
    config: ExecutionConfig | None = None,
) -> float:
    """The fluid executor's closed-form estimate for the same repair."""
    from repro.repair.pipeline import ideal_transfer_seconds

    config = config or ExecutionConfig()
    return ideal_transfer_seconds(config, tree.depth(), tree.bmin(snapshot))
