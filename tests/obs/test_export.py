"""Exporter tests: JSONL round-trip and Chrome trace-event schema."""

import json
import math

import pytest

from repro.obs import (
    Sample,
    Tracer,
    events_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)


def sample_tracer() -> Tracer:
    tracer = Tracer()
    span = tracer.begin(
        "flow", t=1.0, track="node:3", label="PivotRepair", bytes_total=64.0
    )
    tracer.instant("planner.plan", t=1.0, track="planner", bmin=9.0)
    tracer.instant("flow.rate_change", t=1.5, track="node:3", rate=2.0)
    tracer.end("flow", t=2.0, span_id=span, track="node:3")
    return tracer


class TestJsonl:
    def test_round_trip(self):
        tracer = sample_tracer()
        text = to_jsonl(tracer.events)
        assert text.endswith("\n")
        parsed = events_from_jsonl(text)
        assert parsed == list(tracer.events)

    def test_one_json_object_per_line(self):
        text = to_jsonl(sample_tracer().events)
        lines = text.strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            payload = json.loads(line)
            assert {"name", "kind", "t", "track"} <= set(payload)

    def test_wall_excluded_unless_requested(self):
        tracer = Tracer(record_wall=True)
        tracer.instant("x", t=0.0)
        assert "wall" not in to_jsonl(tracer.events)
        assert "wall" in to_jsonl(tracer.events, include_wall=True)

    def test_empty_stream(self):
        assert to_jsonl([]) == ""
        assert events_from_jsonl("") == []

    def test_round_trip_with_wall_times(self):
        tracer = Tracer(record_wall=True)
        span = tracer.begin("flow", t=0.5, track="node:1", label="x")
        tracer.instant("flow.rate_change", t=0.75, track="node:1", rate=3.0)
        tracer.end("flow", t=1.5, span_id=span, track="node:1")
        parsed = events_from_jsonl(
            to_jsonl(tracer.events, include_wall=True)
        )
        assert parsed == list(tracer.events)
        assert all(event.wall is not None for event in parsed)


class TestChromeTrace:
    def test_schema_fields(self):
        trace = to_chrome_trace(sample_tracer().events)
        events = trace["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"ph", "pid", "tid", "name"} <= set(event)
            if event["ph"] != "M":
                assert "ts" in event

    def test_span_becomes_complete_event(self):
        trace = to_chrome_trace(sample_tracer().events)
        [complete] = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete["name"] == "flow"
        assert complete["ts"] == pytest.approx(1.0e6)
        assert complete["dur"] == pytest.approx(1.0e6)
        assert complete["args"]["label"] == "PivotRepair"

    def test_thread_metadata_names_tracks(self):
        trace = to_chrome_trace(sample_tracer().events)
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        # Node tracks sort before named tracks.
        assert names[0] == "node:3"
        assert names[1] == "planner"

    def test_unmatched_begin_degrades_to_instant(self):
        tracer = Tracer()
        tracer.begin("flow", t=4.0, track="node:0")
        trace = to_chrome_trace(tracer.events)
        [instant] = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["ts"] == pytest.approx(4.0e6)

    def test_node_tracks_sorted_numerically(self):
        tracer = Tracer()
        for node in (10, 2, 1):
            tracer.instant("x", t=0.0, track=f"node:{node}")
        trace = to_chrome_trace(tracer.events)
        names = [
            e["args"]["name"]
            for e in sorted(
                (e for e in trace["traceEvents"] if e["ph"] == "M"),
                key=lambda e: e["tid"],
            )
        ]
        assert names == ["node:1", "node:2", "node:10"]

    def test_foreground_tracks_grouped_and_sorted_numerically(self):
        tracer = Tracer()
        for track in (
            "foreground:10", "node:2", "foreground:3", "planner", "faults"
        ):
            tracer.instant("x", t=0.0, track=track)
        trace = to_chrome_trace(tracer.events)
        names = [
            e["args"]["name"]
            for e in sorted(
                (e for e in trace["traceEvents"] if e["ph"] == "M"),
                key=lambda e: e["tid"],
            )
        ]
        assert names == [
            "node:2", "foreground:3", "foreground:10", "faults", "planner"
        ]

    def test_samples_become_counter_events(self):
        samples = [
            Sample(
                t=0.5,
                up={0: 5e7},
                down={1: 2.5e7},
                up_util={0: 0.5},
                down_util={1: 0.25},
                rate_by_kind={"repair": 5e7, "foreground": 1e6},
            )
        ]
        trace = to_chrome_trace(sample_tracer().events, samples=samples)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        by_name = {e["name"]: e for e in counters}
        assert by_name["util node 0"]["args"] == {"up": 0.5, "down": 0.0}
        assert by_name["util node 1"]["args"] == {"up": 0.0, "down": 0.25}
        assert by_name["rate by kind (bytes/s)"]["args"] == {
            "foreground": 1e6,
            "repair": 5e7,
        }
        assert all(e["ts"] == pytest.approx(0.5e6) for e in counters)

    def test_infinite_utilization_clamped_to_finite_json(self):
        samples = [Sample(t=0.0, up_util={0: math.inf})]
        trace = to_chrome_trace([], samples=samples)
        text = json.dumps(trace, allow_nan=False)  # raises if inf leaks
        [counter] = [
            e for e in json.loads(text)["traceEvents"] if e["ph"] == "C"
        ]
        assert counter["args"]["up"] == 1e6


class TestWriteTrace:
    def test_jsonl_file(self, tmp_path):
        path = write_trace(sample_tracer().events, tmp_path / "t.jsonl")
        assert len(path.read_text().strip().split("\n")) == 4

    def test_chrome_file_is_valid_json(self, tmp_path):
        path = write_trace(
            sample_tracer().events, tmp_path / "t.json", fmt="chrome"
        )
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace([], tmp_path / "t", fmt="xml")

class TestLabeledCounterSeries:
    def make_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("hedge_events", kind="cancel").inc(2)
        registry.counter("hedge_events", kind="launch").inc(3)
        registry.counter("hedges_cancelled").inc(2)  # unlabeled: excluded
        registry.gauge("cap", node=1).set(5.0)  # gauge family: excluded
        return registry

    def test_labeled_counter_families_become_counter_events(self):
        trace = to_chrome_trace(
            sample_tracer().events, registry=self.make_registry()
        )
        [event] = [
            e for e in trace["traceEvents"]
            if e["ph"] == "C" and e["name"] == "hedge_events"
        ]
        assert event["args"] == {
            '{kind="cancel"}': 2.0, '{kind="launch"}': 3.0,
        }
        # Stamped at the last event timestamp (2.0s -> microseconds).
        assert event["ts"] == pytest.approx(2.0e6)
        names = [e.get("name") for e in trace["traceEvents"]]
        assert "hedges_cancelled" not in names
        assert "cap" not in names

    def test_empty_events_and_samples_still_valid(self):
        # Regression: no events, no samples, no governor cap anywhere.
        trace = to_chrome_trace([], samples=[], registry=None)
        json.dumps(trace)
        assert trace["traceEvents"] == []
        trace = to_chrome_trace(
            [], samples=[Sample(t=1.0)], registry=self.make_registry()
        )
        json.dumps(trace)
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert kinds <= {"C", "M"}

    def test_absent_governor_emits_no_cap_counter(self):
        trace = to_chrome_trace([], samples=[Sample(t=1.0)])
        names = [e.get("name") for e in trace["traceEvents"]]
        assert "repair cap (bytes/s)" not in names
        capped = Sample(t=2.0, repair_cap=1e6)
        trace = to_chrome_trace([], samples=[capped])
        [event] = [
            e for e in trace["traceEvents"]
            if e.get("name") == "repair cap (bytes/s)"
        ]
        assert event["args"] == {"cap": 1e6}

    def test_write_trace_passes_registry_through(self, tmp_path):
        path = write_trace(
            sample_tracer().events, tmp_path / "t.json", fmt="chrome",
            registry=self.make_registry(),
        )
        payload = json.loads(path.read_text())
        assert any(
            e.get("name") == "hedge_events" for e in payload["traceEvents"]
        )


class TestCausalFlowArrows:
    """Perfetto flow events for the causal span DAG (hedged repair)."""

    def hedged_trace(self):
        import numpy as np

        from repro.core import PivotRepairPlanner
        from repro.ec import RSCode
        from repro.faults import FaultPlan, RetryPolicy
        from repro.network.topology import StarNetwork
        from repro.repair import repair_single_chunk_faulted
        from repro.repair.pipeline import ExecutionConfig
        from repro.resilience import HealthPolicy

        mib = 1024 * 1024
        victim = 3
        net = StarNetwork.constant(
            [12 * mib if i == victim else 10 * mib for i in range(8)],
            [12 * mib if i == victim else 10 * mib for i in range(8)],
        )
        tracer = Tracer()
        result = repair_single_chunk_faulted(
            PivotRepairPlanner(), net, 0, [1, 2, 3, 4, 5], RSCode(6, 4).k,
            FaultPlan.from_spec("degrade:3@0.1-1000x0.05"),
            policy=RetryPolicy(detection_timeout=0.05),
            config=ExecutionConfig(chunk_size=8 * mib, slice_size=32768),
            tracer=tracer, health=HealthPolicy(),
        )
        assert result.hedges == 1
        return tracer.events

    def test_arrows_are_wellformed_perfetto_flow_events(self):
        events = self.hedged_trace()
        doc = to_chrome_trace(events)
        arrows = [
            e for e in doc["traceEvents"] if e.get("cat") == "causal"
        ]
        assert arrows, "hedged repair must produce causal arrows"
        starts = {e["id"]: e for e in arrows if e["ph"] == "s"}
        finishes = {e["id"]: e for e in arrows if e["ph"] == "f"}
        # Every arrow is a matched s/f pair sharing an id; nothing else.
        assert set(starts) == set(finishes)
        assert len(starts) + len(finishes) == len(arrows)
        valid_tids = {
            e["tid"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        for event in arrows:
            assert event["name"] in (
                "causal.parent", "causal.follows", "causal.link"
            )
            assert isinstance(event["id"], int)
            assert event["ts"] >= 0
            assert event["tid"] in valid_tids
        # Binding-point "enclosing slice" only on the finish side.
        assert all(e["bp"] == "e" for e in finishes.values())
        assert all("bp" not in e for e in starts.values())

    def test_start_lies_inside_its_source_slice(self):
        events = self.hedged_trace()
        doc = to_chrome_trace(events)
        slices = [
            (e["tid"], e["ts"], e["ts"] + e["dur"])
            for e in doc["traceEvents"] if e.get("ph") == "X"
        ]
        starts = [
            e for e in doc["traceEvents"]
            if e.get("cat") == "causal" and e["ph"] == "s"
        ]
        assert starts
        for event in starts:
            assert any(
                tid == event["tid"] and t0 <= event["ts"] <= t1
                for tid, t0, t1 in slices
            ), f"flow start {event} binds to no slice on its track"

    def test_hedge_adoption_emits_late_link_arrow(self):
        events = self.hedged_trace()
        assert any(e.name == "span.link" for e in events)
        doc = to_chrome_trace(events)
        names = {
            e["name"] for e in doc["traceEvents"]
            if e.get("cat") == "causal"
        }
        assert "causal.link" in names  # hedge adoption
        assert "causal.parent" in names  # span nesting
        assert "causal.follows" in names  # attempt/planning links
