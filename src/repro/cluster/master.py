"""Cluster master: placement, failure handling, end-to-end repair.

The :class:`Cluster` ties every substrate together the way the paper's
prototype does (Section V-A): a Master organises k helpers per repair, the
Data-Nodes store chunks and compute partial sums, and the repair plan comes
from a pluggable :class:`~repro.core.plan.RepairPlanner`.

Repairs here are *byte-accurate*: the lost chunk is actually recomputed by
propagating coefficient-scaled partial results up the repair tree, so tests
can assert the rebuilt payload equals the original.  Timing questions live
in :mod:`repro.repair`; this module answers correctness questions.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.plan import RepairPlan, RepairPlanner
from repro.ec.chunk import ChunkId
from repro.ec.reed_solomon import RSCode
from repro.ec.stripe import Stripe, place_stripes
from repro.exceptions import ClusterError
from repro.cluster.node import DataNode
from repro.faults.policy import RetryPolicy
from repro.obs.tracer import NULL_TRACER


@dataclass
class DegradedReadOutcome:
    """A fault-aware degraded read: the bytes plus how the read went."""

    payload: np.ndarray
    #: Plans attempted; > 1 means a mid-read failure forced a re-plan.
    attempts: int
    #: Time the read took, including detection windows and backoff.
    elapsed_seconds: float
    #: Helpers of the plan that finally served the read ([] if the
    #: holder recovered and the read was served directly).
    helpers: list[int] = field(default_factory=list)


class Cluster:
    """An erasure-coded storage cluster with a single Master.

    A live ``tracer`` records Master-side decisions (stripe placement,
    failures, which helpers a repair used) on the ``master`` track.
    """

    def __init__(self, node_count: int, code: RSCode, tracer=NULL_TRACER):
        if node_count < code.n:
            raise ClusterError(
                f"cluster of {node_count} nodes cannot host (n={code.n}) stripes"
            )
        self.code = code
        self.nodes = [DataNode(i) for i in range(node_count)]
        self.stripes: dict[int, Stripe] = {}
        self.tracer = tracer

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def alive_nodes(self) -> list[int]:
        return [node.node_id for node in self.nodes if node.alive]

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write_stripe(
        self,
        data_chunks: Sequence[np.ndarray],
        rng: np.random.Generator,
    ) -> Stripe:
        """Encode k data chunks and place the stripe on random nodes."""
        stripe_id = len(self.stripes)
        [stripe] = place_stripes(
            1, self.code, self.node_count, rng, start_id=stripe_id
        )
        coded = self.code.encode(list(data_chunks))
        for chunk_index, node_id in enumerate(stripe.placement):
            self.nodes[node_id].store(
                stripe.chunk_id(chunk_index), coded[chunk_index]
            )
        self.stripes[stripe_id] = stripe
        if self.tracer.enabled:
            self.tracer.instant(
                "master.write_stripe", t=0.0, track="master",
                stripe=stripe_id, placement=list(stripe.placement),
            )
        return stripe

    def write_random_stripes(
        self, count: int, chunk_size: int, rng: np.random.Generator
    ) -> list[Stripe]:
        """Write ``count`` stripes of random data (Experiment 6 setup)."""
        stripes = []
        for _ in range(count):
            data = [
                rng.integers(0, 256, size=chunk_size, dtype=np.uint8)
                for _ in range(self.code.k)
            ]
            stripes.append(self.write_stripe(data, rng))
        return stripes

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail_node(self, node_id: int, at: float = 0.0) -> list[ChunkId]:
        """Crash a node; returns the chunk ids that became unavailable.

        ``at`` stamps the trace event with the (simulated) failure time so
        fault-injected runs line up with the simulator's clock.
        """
        node = self._node(node_id)
        if not node.alive:
            raise ClusterError(f"node {node_id} is already down")
        lost = node.chunk_ids()
        node.fail()
        if self.tracer.enabled:
            self.tracer.instant(
                "master.fail_node", t=at, track="master",
                node=node_id, lost_chunks=len(lost),
            )
        return lost

    def lost_chunks(self, failed_node: int) -> list[tuple[Stripe, int]]:
        """(stripe, chunk_index) pairs lost when ``failed_node`` crashed."""
        lost = []
        for stripe in self.stripes.values():
            index = stripe.chunk_on_node(failed_node)
            if index is not None:
                lost.append((stripe, index))
        return lost

    # ------------------------------------------------------------------
    # Repair path (byte-accurate)
    # ------------------------------------------------------------------
    def repair_chunk(
        self,
        planner: RepairPlanner,
        snapshot: BandwidthSnapshot,
        stripe: Stripe,
        lost_index: int,
        requestor: int,
    ) -> tuple[RepairPlan, np.ndarray]:
        """Plan and execute one single-chunk repair through the tree.

        Returns the plan and the rebuilt payload, which is also stored on
        the requestor node.
        """
        failed_node = stripe.placement[lost_index]
        candidates = [
            node
            for node in stripe.surviving_nodes(failed_node)
            if self._node(node).alive and node != requestor
        ]
        with planner.traced(self.tracer):
            plan = planner.plan(snapshot, requestor, candidates, self.code.k)
        payload = self.rebuild_from_plan(stripe, lost_index, plan)
        self.adopt_repair(
            stripe, lost_index, requestor, payload, at=snapshot.time,
            scheme=plan.scheme, helpers=plan.helpers,
        )
        return plan, payload

    def rebuild_from_plan(
        self, stripe: Stripe, lost_index: int, plan: RepairPlan
    ) -> np.ndarray:
        """Execute an existing plan's data path and return the payload.

        Decouples the byte-accurate reconstruction from planning so
        fault-aware callers (which may re-plan mid-repair against a
        different helper set) can verify any tree they ended up with.
        Nothing is stored or relocated — see :meth:`adopt_repair`.
        """
        helper_indices = [
            stripe.chunk_on_node(node) for node in sorted(plan.helpers)
        ]
        coefficients = self.code.repair_coefficients(
            lost_index, helper_indices
        )
        by_node = {
            node: coefficients[stripe.chunk_on_node(node)]
            for node in plan.helpers
        }
        if plan.is_pipelined:
            return self._aggregate_tree(plan, stripe, by_node)
        return self._aggregate_staged(plan, stripe, by_node)

    def rebuild_slice_range(
        self,
        stripe: Stripe,
        lost_index: int,
        plan: RepairPlan,
        start_slice: int,
        end_slice: int,
        slice_size: int,
    ) -> np.ndarray:
        """Rebuild only slices ``[start_slice, end_slice)`` of a lost chunk.

        The stitching half of checkpoint/resume: a repair that crashed and
        resumed from a slice watermark delivered each slice range through a
        *different* tree, so the byte-accurate verification must rebuild
        each range through the plan that actually carried it and
        concatenate.  Aggregation is identical to
        :meth:`rebuild_from_plan` restricted to the byte range — linearity
        of the GF(2^8) code makes the restriction exact.  The final range
        may extend past the chunk end (pipeline fill); it is clamped.
        """
        if not plan.is_pipelined:
            raise ClusterError(
                "slice-range rebuild requires a pipelined plan"
            )
        if start_slice < 0 or end_slice <= start_slice:
            raise ClusterError(
                f"invalid slice range [{start_slice}, {end_slice})"
            )
        if slice_size <= 0:
            raise ClusterError("slice_size must be positive")
        helper_indices = [
            stripe.chunk_on_node(node) for node in sorted(plan.helpers)
        ]
        coefficients = self.code.repair_coefficients(
            lost_index, helper_indices
        )
        by_node = {
            node: coefficients[stripe.chunk_on_node(node)]
            for node in plan.helpers
        }
        byte_range = (start_slice * slice_size, end_slice * slice_size)
        return self._aggregate_tree(
            plan, stripe, by_node, byte_range=byte_range
        )

    def adopt_repair(
        self,
        stripe: Stripe,
        lost_index: int,
        requestor: int,
        payload: np.ndarray,
        at: float = 0.0,
        scheme: str | None = None,
        helpers: Sequence[int] | None = None,
    ) -> None:
        """Store a rebuilt chunk on the requestor and update placement."""
        self._node(requestor).store(stripe.chunk_id(lost_index), payload)
        stripe.relocate(lost_index, requestor)
        if self.tracer.enabled:
            self.tracer.instant(
                "master.repair_chunk", t=at, track="master",
                stripe=stripe.stripe_id, lost_index=lost_index,
                requestor=requestor, scheme=scheme,
                helpers=sorted(helpers) if helpers is not None else None,
            )

    def repair_stripe(
        self,
        planner: RepairPlanner,
        snapshot: BandwidthSnapshot,
        stripe: Stripe,
        lost_indices: Sequence[int],
        replacements: Mapping[int, int],
    ) -> dict[int, np.ndarray]:
        """Repair one or more lost chunks of a stripe (Section IV-F).

        A single lost chunk goes through the pipelined tree planner; two or
        more fall back to conventional repair — one requestor decodes the
        stripe from k surviving chunks and re-encodes every lost chunk,
        storing each on its replacement node.

        Args:
            lost_indices: chunk indices that became unavailable.
            replacements: lost chunk index -> node to host the rebuilt
                chunk.  Every lost index must be covered.

        Returns:
            Mapping from lost chunk index to the rebuilt payload.
        """
        lost = sorted(set(lost_indices))
        if not lost:
            raise ClusterError("no lost chunks given")
        missing = [i for i in lost if i not in replacements]
        if missing:
            raise ClusterError(f"no replacement node for chunks {missing}")
        if len(lost) == 1:
            index = lost[0]
            _, payload = self.repair_chunk(
                planner, snapshot, stripe, index, replacements[index]
            )
            return {index: payload}
        return self._conventional_multi_repair(
            snapshot, stripe, lost, replacements
        )

    def _conventional_multi_repair(
        self,
        snapshot: BandwidthSnapshot,
        stripe: Stripe,
        lost: list[int],
        replacements: Mapping[int, int],
    ) -> dict[int, np.ndarray]:
        alive_holders = [
            node
            for index, node in enumerate(stripe.placement)
            if index not in lost and self._node(node).alive
        ]
        if len(alive_holders) < self.code.k:
            raise ClusterError(
                f"stripe {stripe.stripe_id}: only {len(alive_holders)} "
                f"chunks survive, need {self.code.k}"
            )
        # Prefer helpers with the strongest uplinks (they upload chunks).
        helpers = sorted(
            alive_holders, key=lambda n: (-snapshot.up_of(n), n)
        )[: self.code.k]
        available = {
            stripe.chunk_on_node(node): self._node(node).read(
                stripe.chunk_id(stripe.chunk_on_node(node))
            )
            for node in helpers
        }
        data = self.code.decode(available)
        full_stripe = self.code.encode(data)
        rebuilt: dict[int, np.ndarray] = {}
        for index in lost:
            payload = full_stripe[index]
            self._node(replacements[index]).store(
                stripe.chunk_id(index), payload
            )
            stripe.relocate(index, replacements[index])
            rebuilt[index] = payload
        return rebuilt

    def degraded_read(
        self,
        planner: RepairPlanner,
        snapshot: BandwidthSnapshot,
        stripe: Stripe,
        chunk_index: int,
        client: int,
    ) -> np.ndarray:
        """Serve a read of an unavailable chunk without storing it.

        The hot-storage motivation: a client read hits a transiently failed
        node and the chunk is reconstructed on the fly at the client, via
        the same pipelined repair tree (the client plays the requestor).
        """
        holder = stripe.placement[chunk_index]
        if self._node(holder).alive and self._node(holder).has(
            stripe.chunk_id(chunk_index)
        ):
            return self._node(holder).read(stripe.chunk_id(chunk_index))
        candidates = [
            node
            for node in stripe.surviving_nodes(holder)
            if self._node(node).alive and node != client
        ]
        with planner.traced(self.tracer):
            plan = planner.plan(snapshot, client, candidates, self.code.k)
        return self._execute_read_plan(plan, stripe, chunk_index)

    def degraded_read_faulted(
        self,
        planner: RepairPlanner,
        network,
        stripe: Stripe,
        chunk_index: int,
        client: int,
        faults,
        policy: RetryPolicy | None = None,
        start_time: float = 0.0,
        attempt_seconds: float = 1.0,
    ) -> DegradedReadOutcome:
        """Degraded read under an injected fault plan (:mod:`repro.faults`).

        Helpers can crash or lose their chunk while the read is in
        flight: a plan whose reader set is hit by a fault inside its
        ``attempt_seconds`` execution window is abandoned after the
        policy's detection timeout and re-planned over the nodes still
        usable then, with backoff between attempts.  Returns the
        byte-accurate payload (callers decode-verify it) together with
        the attempt count, or raises :class:`ClusterError` once the retry
        budget is exhausted or fewer than ``k`` helpers survive.

        ``network`` supplies bandwidth snapshots at each (re)plan time —
        pass the fault-wrapped network so plans see fault capacities.
        """
        policy = policy or RetryPolicy()
        now = start_time
        attempts = 0
        while True:
            attempts += 1
            if faults.is_dead(client, now):
                raise ClusterError(
                    f"client {client} crashed at {now:.3f}s"
                )
            holder = stripe.placement[chunk_index]
            holder_ok = (
                self._node(holder).alive
                and self._node(holder).has(stripe.chunk_id(chunk_index))
                and not faults.is_dead(holder, now)
                and not faults.chunk_unreadable(holder, now)
            )
            if holder_ok:
                return DegradedReadOutcome(
                    payload=self._node(holder).read(
                        stripe.chunk_id(chunk_index)
                    ),
                    attempts=attempts,
                    elapsed_seconds=now - start_time,
                )
            candidates = [
                node
                for node in stripe.surviving_nodes(holder)
                if node != client
                and self._node(node).alive
                and not faults.is_dead(node, now)
                and not faults.chunk_unreadable(node, now)
            ]
            if len(candidates) < self.code.k:
                raise ClusterError(
                    f"stripe {stripe.stripe_id}: only {len(candidates)} "
                    f"helpers usable at {now:.3f}s, need k={self.code.k}"
                )
            snapshot = BandwidthSnapshot.from_network(network, now)
            with planner.traced(self.tracer):
                plan = planner.plan(
                    snapshot, client, candidates, self.code.k
                )
            readers = frozenset({client, *plan.helpers})
            interrupted_at = faults.next_failure_affecting(readers, now)
            if interrupted_at < now + attempt_seconds:
                # A reader dies mid-flight: the attempt is lost.  Notice
                # it (detection timeout), back off, re-plan from there.
                if attempts > policy.max_retries:
                    raise ClusterError(
                        f"degraded read of stripe {stripe.stripe_id} gave "
                        f"up after {attempts} interrupted attempts"
                    )
                now = (
                    interrupted_at
                    + policy.detection_timeout
                    + policy.backoff(attempts - 1)
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "master.degraded_replan", t=now, track="master",
                        stripe=stripe.stripe_id, chunk=chunk_index,
                        client=client, attempt=attempts,
                    )
                continue
            payload = self._execute_read_plan(plan, stripe, chunk_index)
            return DegradedReadOutcome(
                payload=payload,
                attempts=attempts,
                elapsed_seconds=(now + attempt_seconds) - start_time,
                helpers=sorted(plan.helpers),
            )

    def _execute_read_plan(
        self, plan: RepairPlan, stripe: Stripe, chunk_index: int
    ) -> np.ndarray:
        """Run a read plan's data path; shared by both degraded reads."""
        helper_indices = [
            stripe.chunk_on_node(node) for node in sorted(plan.helpers)
        ]
        coefficients = self.code.repair_coefficients(
            chunk_index, helper_indices
        )
        by_node = {
            node: coefficients[stripe.chunk_on_node(node)]
            for node in plan.helpers
        }
        if plan.is_pipelined:
            return self._aggregate_tree(plan, stripe, by_node)
        return self._aggregate_staged(plan, stripe, by_node)

    def _aggregate_tree(
        self,
        plan: RepairPlan,
        stripe: Stripe,
        coefficients: dict[int, int],
        byte_range: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Bottom-up aggregation along the repair tree (Property 2)."""
        tree = plan.tree

        def aggregate(node: int) -> np.ndarray:
            child_results = [
                aggregate(child) for child in tree.children(node)
            ]
            if node not in coefficients:
                # A forwarder (e.g. SMFRepair's idle relays): it stores no
                # chunk of the stripe and only XOR-merges its children's
                # partial results before passing them on.
                if not child_results:
                    raise ClusterError(
                        f"node {node} has no chunk and nothing to forward"
                    )
                if not self._node(node).alive:
                    raise ClusterError(f"forwarder {node} is down")
                merged = child_results[0].copy()
                for extra in child_results[1:]:
                    merged ^= extra
                return merged
            chunk_index = stripe.chunk_on_node(node)
            return self._node(node).partial_result(
                stripe.chunk_id(chunk_index),
                coefficients[node],
                child_results,
                field=self.code.field,
                byte_range=byte_range,
            )

        partials = [aggregate(child) for child in tree.children(tree.root)]
        result = partials[0].copy()
        for partial in partials[1:]:
            result ^= partial
        return result

    def _aggregate_staged(
        self, plan: RepairPlan, stripe: Stripe, coefficients: dict[int, int]
    ) -> np.ndarray:
        """Round-based aggregation for PPR/conventional plans."""
        held: dict[int, np.ndarray] = {}
        for helper, coeff in coefficients.items():
            chunk_index = stripe.chunk_on_node(helper)
            held[helper] = self._node(helper).partial_result(
                stripe.chunk_id(chunk_index), coeff, [], field=self.code.field
            )
        requestor_acc: np.ndarray | None = None
        assert plan.stages is not None
        for stage in plan.stages:
            for src, dst in stage:
                payload = held.pop(src)
                if dst == plan.requestor:
                    if requestor_acc is None:
                        requestor_acc = payload.copy()
                    else:
                        requestor_acc ^= payload
                else:
                    held[dst] = held[dst] ^ payload
        if requestor_acc is None:
            raise ClusterError("staged plan never delivered to the requestor")
        return requestor_acc

    def _node(self, node_id: int) -> DataNode:
        if not 0 <= node_id < self.node_count:
            raise ClusterError(f"unknown node {node_id}")
        return self.nodes[node_id]
