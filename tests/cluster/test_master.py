"""Integration tests: byte-accurate end-to-end repair through the cluster."""

import numpy as np
import pytest

from repro.baselines import ConventionalPlanner, PPRPlanner, PPTPlanner, RPPlanner
from repro.cluster import Cluster
from repro.core import BandwidthSnapshot, PivotRepairPlanner
from repro.ec import RSCode
from repro.exceptions import ClusterError

NODE_COUNT = 12
CHUNK = 256


def uniform_snapshot(count=NODE_COUNT, value=1000.0):
    return BandwidthSnapshot(
        up={i: value for i in range(count)},
        down={i: value for i in range(count)},
    )


def heterogeneous_snapshot(count=NODE_COUNT, seed=0):
    rng = np.random.default_rng(seed)
    return BandwidthSnapshot(
        up={i: float(rng.integers(10, 1000)) for i in range(count)},
        down={i: float(rng.integers(10, 1000)) for i in range(count)},
    )


@pytest.fixture
def cluster():
    c = Cluster(NODE_COUNT, RSCode(6, 4))
    c.write_random_stripes(5, CHUNK, np.random.default_rng(42))
    return c


def pick_requestor(cluster, stripe, failed_node):
    holders = set(stripe.surviving_nodes(failed_node))
    return next(
        n
        for n in range(cluster.node_count)
        if n not in holders and n != failed_node
    )


class TestClusterBasics:
    def test_too_small_cluster_rejected(self):
        with pytest.raises(ClusterError):
            Cluster(4, RSCode(6, 4))

    def test_write_places_all_chunks(self, cluster):
        for stripe in cluster.stripes.values():
            for index, node in enumerate(stripe.placement):
                assert cluster.nodes[node].has(stripe.chunk_id(index))

    def test_fail_node_reports_lost_chunks(self, cluster):
        some_stripe = cluster.stripes[0]
        victim = some_stripe.placement[0]
        lost = cluster.fail_node(victim)
        assert len(lost) >= 1
        assert not cluster.nodes[victim].alive
        assert victim not in cluster.alive_nodes()

    def test_double_fail_rejected(self, cluster):
        victim = cluster.stripes[0].placement[0]
        cluster.fail_node(victim)
        with pytest.raises(ClusterError):
            cluster.fail_node(victim)

    def test_lost_chunks_match_placement(self, cluster):
        victim = cluster.stripes[0].placement[2]
        expected = [
            (s, s.chunk_on_node(victim))
            for s in cluster.stripes.values()
            if s.chunk_on_node(victim) is not None
        ]
        cluster.fail_node(victim)
        assert cluster.lost_chunks(victim) == expected


@pytest.mark.parametrize(
    "planner_factory",
    [
        PivotRepairPlanner,
        RPPlanner,
        PPRPlanner,
        ConventionalPlanner,
        lambda: PPTPlanner(tree_budget=2000),
    ],
    ids=["pivot", "rp", "ppr", "conventional", "ppt"],
)
class TestByteAccurateRepair:
    def test_rebuilt_chunk_matches_original(self, cluster, planner_factory):
        stripe = cluster.stripes[0]
        lost_index = 1
        failed_node = stripe.placement[lost_index]
        original = cluster.nodes[failed_node].read(
            stripe.chunk_id(lost_index)
        )
        original = original.copy()
        cluster.fail_node(failed_node)
        requestor = pick_requestor(cluster, stripe, failed_node)
        plan, rebuilt = cluster.repair_chunk(
            planner_factory(), heterogeneous_snapshot(), stripe,
            lost_index, requestor,
        )
        np.testing.assert_array_equal(rebuilt, original)
        assert cluster.nodes[requestor].has(stripe.chunk_id(lost_index))
        assert len(plan.helpers) == cluster.code.k

    def test_parity_chunk_repair(self, cluster, planner_factory):
        stripe = cluster.stripes[1]
        lost_index = cluster.code.n - 1  # a parity chunk
        failed_node = stripe.placement[lost_index]
        original = cluster.nodes[failed_node].read(
            stripe.chunk_id(lost_index)
        ).copy()
        cluster.fail_node(failed_node)
        requestor = pick_requestor(cluster, stripe, failed_node)
        _, rebuilt = cluster.repair_chunk(
            planner_factory(), uniform_snapshot(), stripe,
            lost_index, requestor,
        )
        np.testing.assert_array_equal(rebuilt, original)


class TestFullNodeByteAccuracy:
    def test_all_lost_chunks_rebuilt_correctly(self):
        cluster = Cluster(NODE_COUNT, RSCode(9, 6))
        cluster.write_random_stripes(8, CHUNK, np.random.default_rng(7))
        victim = cluster.stripes[0].placement[0]
        originals = {}
        for stripe, index in cluster.lost_chunks(victim):
            originals[stripe.stripe_id] = (
                index,
                cluster.nodes[victim].read(stripe.chunk_id(index)).copy(),
            )
        cluster.fail_node(victim)
        planner = PivotRepairPlanner()
        for stripe, index in cluster.lost_chunks(victim):
            requestor = pick_requestor(cluster, stripe, victim)
            _, rebuilt = cluster.repair_chunk(
                planner, heterogeneous_snapshot(seed=stripe.stripe_id),
                stripe, index, requestor,
            )
            np.testing.assert_array_equal(
                rebuilt, originals[stripe.stripe_id][1]
            )
