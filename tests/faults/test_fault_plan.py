"""FaultPlan construction, queries, and serialisation."""

import math

import pytest

from repro.exceptions import FaultError
from repro.faults import (
    ChunkReadError,
    FaultPlan,
    HelperStall,
    LinkDegradation,
    NodeCrash,
)


class TestEvents:
    def test_crash_rejects_negative_time(self):
        with pytest.raises(FaultError):
            NodeCrash(node=1, time=-0.5)

    def test_degradation_validates_window_and_factor(self):
        with pytest.raises(FaultError):
            LinkDegradation(node=1, start=5.0, end=4.0, factor=0.5)
        with pytest.raises(FaultError):
            LinkDegradation(node=1, start=0.0, end=1.0, factor=1.5)
        with pytest.raises(FaultError):
            LinkDegradation(
                node=1, start=0.0, end=1.0, factor=0.5, direction="sideways"
            )

    def test_stall_requires_positive_duration(self):
        with pytest.raises(FaultError):
            HelperStall(node=2, start=1.0, duration=0.0)

    def test_stall_end(self):
        assert HelperStall(node=2, start=1.0, duration=2.5).end == 3.5


class TestSpecRoundtrip:
    SPEC = "crash:3@5;degrade:2@2-8x0.25:down;stall:4@3+2;readerr:1@0"

    def test_from_spec_parses_every_kind(self):
        plan = FaultPlan.from_spec(self.SPEC)
        kinds = [event.kind for event in plan.events]
        assert kinds == ["crash", "degrade", "stall", "readerr"]

    def test_spec_roundtrip_is_identity(self):
        plan = FaultPlan.from_spec(self.SPEC)
        assert plan.to_spec() == self.SPEC
        again = FaultPlan.from_spec(plan.to_spec())
        assert again.events == plan.events

    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan.from_spec(self.SPEC)
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.from_file(path)
        assert loaded.events == plan.events

    def test_malformed_specs_raise(self):
        for bad in ("crash", "crash:x@1", "wobble:1@2", "degrade:1@2x0.5"):
            with pytest.raises(FaultError):
                FaultPlan.from_spec(bad)

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(FaultError):
            FaultPlan.from_file(path)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.none()
        assert len(FaultPlan.none()) == 0
        assert FaultPlan.from_spec(self.SPEC)


class TestQueries:
    def test_crash_kills_capacity_permanently(self):
        plan = FaultPlan([NodeCrash(node=3, time=5.0)])
        assert not plan.is_dead(3, 4.999)
        assert plan.is_dead(3, 5.0)
        assert plan.capacity_factor(3, "up", 4.0) == 1.0
        assert plan.capacity_factor(3, "up", 5.0) == 0.0
        assert plan.capacity_factor(3, "down", 100.0) == 0.0
        assert plan.dead_nodes(6.0) == {3}
        assert plan.dead_nodes(4.0) == set()

    def test_degradation_scales_only_its_direction_and_window(self):
        plan = FaultPlan(
            [LinkDegradation(node=2, start=2.0, end=8.0, factor=0.25,
                             direction="down")]
        )
        assert plan.capacity_factor(2, "down", 5.0) == 0.25
        assert plan.capacity_factor(2, "up", 5.0) == 1.0
        assert plan.capacity_factor(2, "down", 1.0) == 1.0
        assert plan.capacity_factor(2, "down", 8.0) == 1.0

    def test_overlapping_windows_multiply(self):
        plan = FaultPlan(
            [
                LinkDegradation(node=1, start=0.0, end=10.0, factor=0.5),
                LinkDegradation(node=1, start=5.0, end=15.0, factor=0.5),
            ]
        )
        assert plan.capacity_factor(1, "up", 7.0) == 0.25
        assert plan.capacity_factor(1, "up", 2.0) == 0.5
        assert plan.capacity_factor(1, "up", 12.0) == 0.5

    def test_stall_is_zero_factor_both_directions(self):
        plan = FaultPlan([HelperStall(node=4, start=3.0, duration=2.0)])
        assert plan.capacity_factor(4, "up", 4.0) == 0.0
        assert plan.capacity_factor(4, "down", 4.0) == 0.0
        assert plan.stalled_nodes(4.0) == {4}
        assert plan.stalled_nodes(5.0) == set()

    def test_read_error_keeps_capacity(self):
        plan = FaultPlan([ChunkReadError(node=1, time=2.0)])
        assert not plan.chunk_unreadable(1, 1.9)
        assert plan.chunk_unreadable(1, 2.0)
        assert plan.capacity_factor(1, "up", 3.0) == 1.0
        assert plan.unreadable_nodes(3.0) == {1}

    def test_breakpoints_and_next_change(self):
        plan = FaultPlan.from_spec(
            "crash:3@5;degrade:2@2-8x0.25;stall:4@3+2"
        )
        assert plan.breakpoints() == [2.0, 3.0, 5.0, 8.0]
        assert plan.next_change_after(0.0) == 2.0
        assert plan.next_change_after(3.0) == 5.0
        assert plan.next_change_after(8.0) == math.inf

    def test_next_failure_affecting_scopes_to_nodes(self):
        plan = FaultPlan.from_spec("crash:3@5;readerr:1@2;crash:7@1")
        assert plan.next_failure_affecting({1, 3}, 0.0) == 2.0
        assert plan.next_failure_affecting({3}, 0.0) == 5.0
        assert plan.next_failure_affecting({3}, 5.0) == math.inf
        assert plan.next_failure_affecting({0, 2}, 0.0) == math.inf

    def test_affected_nodes(self):
        plan = FaultPlan.from_spec("crash:3@5;readerr:1@2;stall:4@3+2")
        assert plan.affected_nodes() == [1, 3, 4]

    def test_shifted_offsets_every_event(self):
        spec = "crash:3@5;degrade:2@2-8x0.25:down;stall:4@3+2;readerr:1@0"
        plan = FaultPlan.from_spec(spec).shifted(100.0)
        assert plan.crash_time(3) == 105.0
        assert plan.capacity_factor(2, "down", 103.0) == 0.25
        assert plan.capacity_factor(2, "down", 2.5) == 1.0
        assert plan.capacity_factor(4, "up", 104.0) == 0.0
        assert plan.chunk_unreadable(1, 100.0)
        assert not plan.chunk_unreadable(1, 99.0)
        # Zero offset is the identity (same object, no copy).
        assert plan.shifted(0.0) is plan


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(11, 10, crashes=2, stalls=2, read_errors=1)
        b = FaultPlan.random(11, 10, crashes=2, stalls=2, read_errors=1)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultPlan.random(1, 10)
        b = FaultPlan.random(2, 10)
        assert a.events != b.events

    def test_protect_excludes_nodes(self):
        plan = FaultPlan.random(
            5, 6, crashes=4, degradations=4, stalls=4,
            protect=(0, 1, 2, 3, 4),
        )
        assert plan.affected_nodes() == [5]

    def test_protect_everything_raises(self):
        with pytest.raises(FaultError):
            FaultPlan.random(0, 3, protect=(0, 1, 2))
