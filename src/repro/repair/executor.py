"""Execute repair plans on the fluid network simulator."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.plan import RepairPlan, RepairPlanner
from repro.exceptions import PlanningError
from repro.network.simulator import FluidSimulator
from repro.network.topology import StarNetwork
from repro.repair.metrics import RepairResult
from repro.repair.pipeline import (
    ExecutionConfig,
    pipeline_bytes_per_edge,
    pipeline_overhead_seconds,
)


def execute_plan(
    plan: RepairPlan,
    network: StarNetwork,
    start_time: float = 0.0,
    config: ExecutionConfig | None = None,
) -> RepairResult:
    """Run a repair plan on a fresh simulator and time the transfer.

    Pipelined plans become one coupled task (every tree edge at a common
    rate); staged plans run their rounds back-to-back, each round a set of
    independent whole-chunk flows.
    """
    config = config or ExecutionConfig()
    sim = FluidSimulator(network, start_time=start_time)
    if plan.is_pipelined:
        transfer = _run_pipelined(plan, sim, config)
    else:
        transfer = _run_staged(plan, sim, config)
    return RepairResult(
        scheme=plan.scheme,
        planning_seconds=plan.effective_planning_seconds,
        transfer_seconds=transfer,
        bmin=plan.bmin,
        plan=plan,
    )


def _run_pipelined(
    plan: RepairPlan, sim: FluidSimulator, config: ExecutionConfig
) -> float:
    tree = plan.tree
    assert tree is not None
    handle = sim.submit_pipelined(
        tree.edges(),
        pipeline_bytes_per_edge(config, tree.depth()),
        label=plan.scheme,
    )
    sim.run()
    return handle.duration + pipeline_overhead_seconds(config)


def _run_staged(
    plan: RepairPlan, sim: FluidSimulator, config: ExecutionConfig
) -> float:
    assert plan.stages is not None
    start = sim.now
    for stage in plan.stages:
        handle = sim.submit_bulk(
            [(src, dst, float(config.chunk_size)) for src, dst in stage],
            label=plan.scheme,
        )
        sim.run()
        if not handle.done:
            raise PlanningError(f"stage of {plan.scheme} never completed")
    return sim.now - start


def repair_single_chunk(
    planner: RepairPlanner,
    network: StarNetwork,
    requestor: int,
    candidates: Sequence[int],
    k: int,
    start_time: float = 0.0,
    config: ExecutionConfig | None = None,
) -> RepairResult:
    """Plan (from a snapshot at ``start_time``) and execute one repair."""
    snapshot = BandwidthSnapshot.from_network(network, start_time)
    plan = planner.plan(snapshot, requestor, candidates, k)
    return execute_plan(plan, network, start_time=start_time, config=config)
