"""Generic GF(2^w) finite fields (w = 8 or 16).

The paper's codes operate over GF(2^w) "over w-bit words" (Section II-A).
GF(2^8) covers every production code in the evaluation (n <= 255); GF(2^16)
lifts that ceiling for *wide stripes* (the ECWide [22] setting from the
same group, n up to 65535).

A :class:`GaloisField` is table-driven: multiplication uses discrete
log/exp tables so whole numpy word arrays multiply by a scalar coefficient
in one vectorised pass.  Tables build lazily on first use (the GF(2^16)
tables hold 2 x 65536 entries).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GaloisFieldError

#: Standard primitive polynomials per word size.
PRIMITIVE_POLYNOMIALS = {
    8: 0x11D,  # x^8 + x^4 + x^3 + x^2 + 1 (ISA-L's default)
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}


class GaloisField:
    """GF(2^w) arithmetic over numpy word arrays."""

    def __init__(self, w: int, primitive_poly: int | None = None):
        if w not in (8, 16):
            raise GaloisFieldError(f"unsupported word size w={w}")
        self.w = w
        self.order = 1 << w
        self.poly = (
            primitive_poly
            if primitive_poly is not None
            else PRIMITIVE_POLYNOMIALS[w]
        )
        self.dtype = np.uint8 if w == 8 else np.uint16
        self._exp: np.ndarray | None = None
        self._log: np.ndarray | None = None

    def __repr__(self) -> str:
        return f"GaloisField(2^{self.w}, poly={self.poly:#x})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GaloisField):
            return NotImplemented
        return (self.w, self.poly) == (other.w, other.poly)

    def __hash__(self) -> int:
        return hash((GaloisField, self.w, self.poly))

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def _tables(self) -> tuple[np.ndarray, np.ndarray]:
        if self._exp is None:
            size = self.order
            exp = np.zeros(2 * size, dtype=self.dtype)
            log = np.zeros(size, dtype=np.int64)
            x = 1
            for i in range(size - 1):
                exp[i] = x
                log[x] = i
                x <<= 1
                if x & size:
                    x ^= self.poly
            # Duplicate so exp[log a + log b] needs no modulo.
            exp[size - 1 : 2 * (size - 1)] = exp[: size - 1]
            self._exp, self._log = exp, log
        return self._exp, self._log

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(self, a, b):
        """Addition is bitwise XOR in characteristic 2."""
        return np.bitwise_xor(a, b)

    sub = add

    def mul(self, a, b):
        """Element-wise product of scalars or word arrays."""
        exp, log = self._tables()
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        result = exp[log[a] + log[b]]
        result = np.where((a == 0) | (b == 0), self.dtype(0), result)
        if result.ndim == 0:
            return int(result)
        return result

    def inv(self, a):
        """Multiplicative inverse of nonzero elements."""
        exp, log = self._tables()
        arr = np.asarray(a, dtype=self.dtype)
        if np.any(arr == 0):
            raise GaloisFieldError(
                f"zero has no multiplicative inverse in GF(2^{self.w})"
            )
        result = exp[(self.order - 1) - log[arr]]
        if result.ndim == 0:
            return int(result)
        return result

    def div(self, a, b):
        b_arr = np.asarray(b, dtype=self.dtype)
        if np.any(b_arr == 0):
            raise GaloisFieldError(f"division by zero in GF(2^{self.w})")
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        if not 0 <= a < self.order:
            raise GaloisFieldError(f"element {a} outside GF(2^{self.w})")
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise GaloisFieldError("zero has no negative powers")
            return 0
        exp, log = self._tables()
        period = self.order - 1
        return int(exp[(int(log[a]) * exponent) % period])

    def mul_slice(self, coefficient: int, data: np.ndarray) -> np.ndarray:
        """Multiply a word buffer by a scalar coefficient (vectorised)."""
        if not 0 <= coefficient < self.order:
            raise GaloisFieldError(
                f"coefficient {coefficient} outside GF(2^{self.w})"
            )
        data = np.asarray(data, dtype=self.dtype)
        if coefficient == 0:
            return np.zeros_like(data)
        if coefficient == 1:
            return data.copy()
        exp, log = self._tables()
        out = exp[log[data] + int(log[coefficient])]
        out[data == 0] = 0
        return out


#: The default field used throughout the library (all paper codes fit).
GF256 = GaloisField(8)

#: Wide-stripe field: stripes up to n = 65535.
GF65536 = GaloisField(16)
