"""Perf-regression snapshot: pinned repair suites with wall-clock costs.

Runs three deterministic suites —

* ``single_chunk``: one repair per scheme on a fixed heterogeneous
  network;
* ``full_node``: a seeded multi-stripe full-node repair;
* ``foreground_interference``: the same repair competing with a seeded
  client workload through the adaptive QoS governor —

and writes a snapshot JSON (``BENCH_pr4.json``) holding, per suite, the
**simulated** results (repair seconds, sim steps, rate recomputations —
bit-stable for a seed, so any drift is a behaviour change) and the
**wall-clock** cost of running the suite (min over ``--repeats``).  It
also measures observation costs: the suite runs again with a
flight-recorder sampler attached (bare, and feeding the simulated-time
TSDB), with the causal tracer recording the full span/flow event
stream, and with a durable repair journal writing to a real file.
Overheads are measured with a warm-up run followed by interleaved
plain/instrumented repeats compared by median — not separate timing
blocks, which let machine drift masquerade as (even negative)
overhead — and each relative cost is gated at 5% when comparing.

Three floor-gated sections ride along: ``engine_scale`` (the 1024-node
repair storm under both allocation engines, ≥10x speedup enforced),
``lifetime`` (a pinned Monte-Carlo durability study, simulated-years
per wall-second floor plus a pivot-loses-strictly-less acceptance
check), and ``storm`` (the fleet control plane draining four
simultaneous full-node repairs, chunks-per-wall-second floor plus a
controlled-breach-beats-the-flood acceptance check).  Their simulated
metrics are drift-gated on compare.

With ``--compare previous.json`` the run gates like CI does:

* simulated metrics must match the previous snapshot (tiny relative
  tolerance) — a mismatch means the simulation changed, not the machine;
* wall-clock metrics may not regress more than ``--tolerance`` (default
  20%) after cross-machine calibration: each snapshot stores the timing
  of a fixed pure-Python loop, and previous wall times are scaled by the
  calibration ratio before comparing;
* a missing or incompatible previous snapshot skips the gate (first run).

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py --out BENCH_pr4.json \
        [--compare BENCH_pr4.json] [--tolerance 0.2] [--repeats 3]
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.baselines import PPTPlanner, RPPlanner
from repro.core import PivotRepairPlanner
from repro.ec import RSCode, place_stripes
from repro.loadgen import (
    ForegroundEngine,
    LoadProfile,
    generate_requests,
    make_governor,
)
from repro.network.topology import StarNetwork
from repro.obs import (
    NULL_TRACER,
    FlightRecorder,
    TimeSeriesDB,
    Tracer,
    critical_paths,
)
from repro.repair import (
    ExecutionConfig,
    repair_full_node,
    repair_single_chunk,
)
from repro.resilience import RepairJournal

SNAPSHOT_VERSION = 1

#: Relative tolerance for "deterministic" simulated metrics.
SIM_RTOL = 1e-6

NODE_COUNT = 16
CODE = RSCode(6, 4)
STRIPES = 96
CHUNK = 64 * 1024 * 1024


def _network() -> StarNetwork:
    """Fixed mildly heterogeneous star (same spirit as chaos_smoke)."""
    return StarNetwork.constant(
        [1e8 + i * 3e6 for i in range(NODE_COUNT)],
        [1e8 + i * 5e6 for i in range(NODE_COUNT)],
    )


def _pin_planning(planner):
    """Zero the wall-measured planning charge for reproducible sim time."""
    inner = planner.plan

    def plan(*args, **kwargs):
        result = inner(*args, **kwargs)
        result.planning_seconds = 0.0
        result.extrapolated_seconds = None
        return result

    planner.plan = plan
    return planner


def _sim_counters(telemetry: dict | None) -> dict:
    counters = (telemetry or {}).get("counters", {})
    return {
        "sim_steps": int(counters.get("sim_steps", 0)),
        "rate_recomputations": int(
            counters.get("sim_rate_recomputations", 0)
        ),
    }


# ----------------------------------------------------------------------
# Suites (each returns {"sim": {...}, and is timed by the caller)
# ----------------------------------------------------------------------
def suite_single_chunk(sampler=None) -> dict:
    """One repair per scheme per requestor; totals aggregated per scheme.

    Iterating requestors keeps a single pass long enough to time while
    still exercising every planner on the same fixed network.
    """
    network = _network()
    config = ExecutionConfig(chunk_size=CHUNK)
    schemes = {
        "pivot": PivotRepairPlanner,
        "rp": RPPlanner,
        "ppt": lambda: PPTPlanner(tree_budget=200_000),
    }
    sim: dict = {}
    for name, factory in sorted(schemes.items()):
        transfer = 0.0
        steps = 0
        recomputations = 0
        for requestor in range(8):
            candidates = [
                node for node in range(NODE_COUNT) if node != requestor
            ]
            result = repair_single_chunk(
                _pin_planning(factory()), network, requestor=requestor,
                candidates=candidates, k=CODE.k, config=config,
                sampler=sampler,
            )
            transfer += result.transfer_seconds
            counters = _sim_counters(result.telemetry)
            steps += counters["sim_steps"]
            recomputations += counters["rate_recomputations"]
        sim[name] = {
            "transfer_seconds": round(transfer, 9),
            "sim_steps": steps,
            "rate_recomputations": recomputations,
        }
    return {"sim": sim}


def _full_node_once(
    sampler=None, with_foreground: bool = False, journal=None,
    tracer=NULL_TRACER,
) -> dict:
    network = _network()
    stripes = place_stripes(
        STRIPES, CODE, NODE_COUNT, np.random.default_rng(5)
    )
    failed = stripes[0].placement[0]
    config = ExecutionConfig(chunk_size=CHUNK)
    foreground = None
    governor = None
    if with_foreground:
        profile = LoadProfile(
            name="bench",
            arrival_rate=120.0,
            duration=60.0,
            read_fraction=0.9,
            request_size=1024 * 1024,
            zipf_s=0.9,
        )
        requests = generate_requests(
            profile, stripes, NODE_COUNT, seed=5
        )
        foreground = ForegroundEngine(
            stripes, requests, _pin_planning(PivotRepairPlanner()),
            failed_nodes={failed},
        )
        governor = make_governor("adaptive")
    result = repair_full_node(
        _pin_planning(PivotRepairPlanner()), network, stripes, failed,
        concurrency=4, config=config,
        foreground=foreground, governor=governor, sampler=sampler,
        journal=journal, tracer=tracer,
    )
    if foreground is not None:
        foreground.drain()
    sim = {
        "repair_seconds": round(result.total_seconds, 9),
        "chunks_repaired": result.chunks_repaired,
        **_sim_counters(result.telemetry),
    }
    if foreground is not None:
        summary = foreground.summary()
        sim["fg_requests"] = int(summary["requests"])
        sim["fg_degraded_reads"] = int(summary["degraded_reads"])
    return {"sim": sim}


def suite_full_node(sampler=None) -> dict:
    return _full_node_once(sampler=sampler)


def suite_foreground_interference(sampler=None, tracer=NULL_TRACER) -> dict:
    return _full_node_once(
        sampler=sampler, with_foreground=True, tracer=tracer
    )


SUITES = {
    "single_chunk": suite_single_chunk,
    "full_node": suite_full_node,
    "foreground_interference": suite_foreground_interference,
}

#: Hard floor for the fast engine's advantage on the 1024-node storm.
ENGINE_SPEEDUP_FLOOR = 10.0

#: Hard floor for the lifetime event loop: simulated years per wall
#: second (local machines run ~25/s; the floor absorbs slow CI runners).
LIFETIME_YEARS_PER_SECOND_FLOOR = 4.0


def lifetime_section(repeats: int) -> dict:
    """Time the Monte-Carlo cluster-lifetime loop on a pinned study.

    Fixed analytic repair durations keep the section independent of the
    fluid simulator (the repair suites above already cover it) so the
    wall clock measures the event loop itself: outage scheduling, heap
    churn, and incremental intact/live bookkeeping.  Simulated metrics
    (digest, per-scheme loss counts) are bit-stable for the seed and
    drift-gated on compare; the run fails outright if PivotRepair does
    not lose strictly less than conventional, or if throughput drops
    below :data:`LIFETIME_YEARS_PER_SECOND_FLOOR` — the durability
    acceptance gate, not a soft metric.
    """
    from repro.lifetime import FixedDurations, LifetimeConfig, run_lifetime

    config = LifetimeConfig(
        years=4, runs=8, seed=42, schemes=("pivot", "conventional"),
        stripes=64, disk_mttf_days=30.0, repair_streams=1,
    )
    durations = FixedDurations(
        {"pivot": 3600.0, "conventional": 4 * 3600.0}
    )
    report, wall = _timed(
        lambda: run_lifetime(config, durations=durations), repeats
    )
    pivot = report.schemes["pivot"].total_losses
    conventional = report.schemes["conventional"].total_losses
    if not 0 < pivot < conventional:
        raise SystemExit(
            f"lifetime suite: pivot {pivot} losses vs conventional "
            f"{conventional} — faster repairs must lose strictly less"
        )
    simulated_years = config.runs * config.years * len(config.schemes)
    throughput = simulated_years / wall
    if throughput < LIFETIME_YEARS_PER_SECOND_FLOOR:
        raise SystemExit(
            f"lifetime suite: {throughput:.1f} simulated years/s below "
            f"the {LIFETIME_YEARS_PER_SECOND_FLOOR:.0f}/s floor "
            f"({simulated_years} years in {wall:.3f}s)"
        )
    return {
        "runs": config.runs,
        "years": config.years,
        "stripes": config.stripes,
        "sim": {
            "digest": report.digest,
            "pivot_losses": pivot,
            "conventional_losses": conventional,
            "pivot_repairs": sum(
                r["repairs_completed"] for r in report.schemes["pivot"].runs
            ),
        },
        "simulated_years": simulated_years,
        "wall_seconds": round(wall, 6),
        "years_per_second": round(throughput, 2),
        "years_per_second_floor": LIFETIME_YEARS_PER_SECOND_FLOOR,
    }


#: Hard floor for the control-plane storm: repair chunks drained (to a
#: terminal state) per wall second (local machines run ~40/s; the floor
#: absorbs slow CI runners).
STORM_CHUNKS_PER_SECOND_FLOOR = 5.0


def storm_section(repeats: int) -> dict:
    """Time the fleet control plane on the pinned repair-storm scenario.

    The tuned default :class:`repro.controlplane.StormConfig`: a 3-rack
    fleet loses a whole rack, four simultaneous full-node repairs run
    under QoS admission control, backpressure, and graceful degradation
    while two foreground tenants hold a p99 SLO.  Simulated metrics
    (breach seconds, chunk/decision counts, goodput) are bit-stable for
    the seed and drift-gated on compare; the run fails outright if any
    job fails to drain, if admission control does not strictly beat the
    uncontrolled flood baseline on SLO breach-seconds, or if drained
    chunks per wall second drop below
    :data:`STORM_CHUNKS_PER_SECOND_FLOOR` — the control-plane
    acceptance gate, not a soft metric.
    """
    from repro.controlplane import StormConfig, run_storm

    controlled, wall = _timed(lambda: run_storm(StormConfig()), repeats)
    flood = run_storm(StormConfig(admission_control=False, max_time=3000.0))
    if not all(controlled.fleet.completed.values()) or not all(
        flood.fleet.completed.values()
    ):
        raise SystemExit(
            "storm suite: a repair job failed to drain — every job must "
            "end repaired or as a clean RepairFailed"
        )
    if controlled.breach_seconds >= flood.breach_seconds:
        raise SystemExit(
            f"storm suite: controlled breach "
            f"{controlled.breach_seconds:.1f}s not below the flood's "
            f"{flood.breach_seconds:.1f}s — admission control must pay off"
        )
    chunks = controlled.fleet.chunks_repaired + controlled.fleet.chunks_failed
    throughput = chunks / wall
    if throughput < STORM_CHUNKS_PER_SECOND_FLOOR:
        raise SystemExit(
            f"storm suite: {throughput:.1f} drained chunks/s below the "
            f"{STORM_CHUNKS_PER_SECOND_FLOOR:.0f}/s floor "
            f"({chunks} chunks in {wall:.3f}s)"
        )
    counts = controlled.fleet.decision_counts()
    return {
        "jobs": len(controlled.fleet.jobs),
        "sim": {
            "chunks_repaired": controlled.fleet.chunks_repaired,
            "chunks_failed": controlled.fleet.chunks_failed,
            "breach_seconds": round(controlled.breach_seconds, 9),
            "flood_breach_seconds": round(flood.breach_seconds, 9),
            "sheds": counts.get("shed", 0),
            "resumes": counts.get("resume", 0)
            + counts.get("resume_forced", 0),
            "decisions": sum(counts.values()),
            "goodput_bytes_per_second": round(
                controlled.foreground_summary["goodput_bytes_per_second"],
                6,
            ),
        },
        "chunks": chunks,
        "wall_seconds": round(wall, 6),
        "chunks_per_second": round(throughput, 2),
        "chunks_per_second_floor": STORM_CHUNKS_PER_SECOND_FLOOR,
    }


def engine_scale_section(repeats: int) -> dict:
    """Time the 1024-node repair storm under both allocation engines.

    The scenario is the recompute-bound shape from
    :func:`repro.network.scenario.storm_scenario`: 200 staggered repair
    trees and 600 foreground flows over static capacities, so the wall
    clock measures rate recomputation, not breakpoint churn.  The run
    fails outright if the engines' digests differ or the speedup drops
    below :data:`ENGINE_SPEEDUP_FLOOR` — this is the scale acceptance
    gate, not a soft metric.
    """
    from repro.network.scenario import replay, storm_scenario

    scenario = storm_scenario(1)
    fast_digest, fast_wall = _timed(
        lambda: replay(scenario, "fast"), max(repeats, 3)
    )
    reference_digest, reference_wall = _timed(
        lambda: replay(scenario, "reference"), repeats
    )
    if fast_digest != reference_digest:
        raise SystemExit(
            "engine scale suite: fast and reference digests differ — "
            "the engines must be bit-identical"
        )
    speedup = reference_wall / fast_wall
    if speedup < ENGINE_SPEEDUP_FLOOR:
        raise SystemExit(
            f"engine scale suite: speedup {speedup:.1f}x below the "
            f"{ENGINE_SPEEDUP_FLOOR:.0f}x floor (fast {fast_wall:.3f}s, "
            f"reference {reference_wall:.3f}s)"
        )
    return {
        "node_count": scenario.node_count,
        "repairs": 200,
        "foreground_flows": 600,
        "sim": {
            "steps": fast_digest["steps"],
            "tasks_completed": fast_digest["tasks_completed"],
            "bytes_transferred": round(
                fast_digest["bytes_transferred"], 6
            ),
            "end_time": round(fast_digest["end_time"], 9),
        },
        "fast_wall_seconds": round(fast_wall, 6),
        "reference_wall_seconds": round(reference_wall, 6),
        "speedup": round(speedup, 2),
        "speedup_floor": ENGINE_SPEEDUP_FLOOR,
    }


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def _calibrate() -> float:
    """Fixed pure-Python workload timing, for cross-machine scaling."""
    best = math.inf
    for _ in range(3):
        started = time.perf_counter()
        total = 0.0
        for i in range(300_000):
            total += (i % 97) * 1e-9
        best = min(best, time.perf_counter() - started)
    assert total >= 0
    return best


def _timed(fn, repeats: int):
    """(result, min wall seconds) over ``repeats`` runs."""
    best = math.inf
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _overhead(plain_fn, instrumented_fn, repeats: int):
    """Measure instrumentation overhead by interleaving the variants.

    One untimed warm-up of each variant first (imports, allocator and
    cache state settle), then alternating plain/instrumented timings
    compared by the **minimum of per-pair deltas**.  Timing the two
    variants in separate blocks lets slow machine drift (thermal, page
    cache) land entirely on one side — that is how a previous snapshot
    recorded a negative "overhead".  Deltas use ``time.process_time``
    (CPU seconds): instrumentation cost is extra work the process does,
    and CPU time is immune to the scheduler noise that dominates wall
    clock on shared machines.  Even CPU-time noise on a shared box is
    almost entirely *positive* (a neighbour trashing the cache inflates
    cycles-per-instruction), so sampled pair deltas here span 2-5x for
    identical code.  The minimum is the noise-immune estimator for a
    *regression gate*: a genuine cost increase raises every pair
    uniformly, while a spike only contaminates the pair it lands on.
    The fraction is clamped at zero: instrumentation cannot speed the
    run up, so a negative difference is noise by construction.

    The heap accumulated by *earlier* bench sections is ``gc.freeze()``d
    for the duration of the timings: the instrumented variant allocates
    tens of thousands of event objects, and without the freeze every
    collection those allocations trigger also scans the unrelated prior
    sections' object graph — billing GC of someone else's heap to the
    instrumentation under test.  (The instrumentation's *own* GC cost
    is still measured: new allocations stay tracked.)

    Returns ``(plain_result, instrumented_result, stats_dict)``.
    """
    plain_result = plain_fn()
    instrumented_result = instrumented_fn()
    gc.collect()
    gc.freeze()
    plain_times: list[float] = []
    instrumented_times: list[float] = []

    def run(fn, times):
        started = time.process_time()
        result = fn()
        times.append(time.process_time() - started)
        return result

    for i in range(max(repeats, 5)):
        # Alternate which variant runs first within the pair so that
        # cache warming and monotonic drift cancel across pairs.
        if i % 2 == 0:
            plain_result = run(plain_fn, plain_times)
            instrumented_result = run(instrumented_fn, instrumented_times)
        else:
            instrumented_result = run(instrumented_fn, instrumented_times)
            plain_result = run(plain_fn, plain_times)
    gc.unfreeze()
    # Per-pair deltas are adjacent in time, so they are far less
    # drift-sensitive than comparing aggregate medians; the minimum
    # then discards every pair a noise spike landed on.
    delta = min(i - p for p, i in zip(plain_times, instrumented_times))
    plain_cpu = statistics.median(plain_times)
    instrumented_cpu = statistics.median(instrumented_times)
    overhead = max(delta / plain_cpu, 0.0) if plain_cpu > 0 else 0.0
    stats = {
        "cpu_plain_seconds": round(plain_cpu, 6),
        "cpu_instrumented_seconds": round(instrumented_cpu, 6),
        "cpu_delta_seconds": round(max(delta, 0.0), 6),
        "overhead_fraction": round(overhead, 4),
    }
    return plain_result, instrumented_result, stats


def collect(repeats: int) -> dict:
    snapshot: dict = {
        "version": SNAPSHOT_VERSION,
        "calibration_seconds": round(_calibrate(), 6),
        "repeats": repeats,
        "suites": {},
    }
    for name, fn in SUITES.items():
        result, wall = _timed(fn, repeats)
        snapshot["suites"][name] = {
            "sim": result["sim"],
            "wall_seconds": round(wall, 6),
        }
        print(f"{name}: wall {wall:.3f}s")
    # Allocation-engine scale gate: the 1024-node storm, both engines.
    snapshot["engine_scale"] = engine_scale_section(repeats)
    # Lifetime event-loop gate: a pinned Monte-Carlo durability study.
    snapshot["lifetime"] = lifetime_section(repeats)
    # Control-plane gate: the pinned repair storm, controlled vs flood.
    snapshot["storm"] = storm_section(repeats)
    print(
        "storm: "
        f"{snapshot['storm']['chunks']} chunks drained in "
        f"{snapshot['storm']['wall_seconds']:.3f}s = "
        f"{snapshot['storm']['chunks_per_second']:.1f}/s (floor "
        f"{STORM_CHUNKS_PER_SECOND_FLOOR:.0f}/s), breach "
        f"{snapshot['storm']['sim']['breach_seconds']:.1f}s controlled "
        f"vs {snapshot['storm']['sim']['flood_breach_seconds']:.1f}s "
        "flood"
    )
    print(
        "lifetime: "
        f"{snapshot['lifetime']['simulated_years']} simulated years in "
        f"{snapshot['lifetime']['wall_seconds']:.3f}s = "
        f"{snapshot['lifetime']['years_per_second']:.1f}/s (floor "
        f"{LIFETIME_YEARS_PER_SECOND_FLOOR:.0f}/s), pivot "
        f"{snapshot['lifetime']['sim']['pivot_losses']} vs conventional "
        f"{snapshot['lifetime']['sim']['conventional_losses']} losses"
    )
    print(
        "engine_scale: fast "
        f"{snapshot['engine_scale']['fast_wall_seconds']:.3f}s vs "
        f"reference "
        f"{snapshot['engine_scale']['reference_wall_seconds']:.3f}s "
        f"= {snapshot['engine_scale']['speedup']:.1f}x (floor "
        f"{ENGINE_SPEEDUP_FLOOR:.0f}x), digests identical"
    )
    # Observation overheads, each measured as interleaved plain vs
    # instrumented runs of the same suite (see ``_overhead``).
    reference = snapshot["suites"]["foreground_interference"]["sim"]

    def plain():
        return suite_foreground_interference()

    def sampled():
        return suite_foreground_interference(
            sampler=FlightRecorder(interval=0.25, capacity=65536)
        )

    def sampled_tsdb():
        # The full telemetry plane: flight recorder mirroring every
        # sample into the simulated-time TSDB.
        return suite_foreground_interference(
            sampler=FlightRecorder(
                interval=0.25, capacity=65536,
                tsdb=TimeSeriesDB(capacity=65536),
            )
        )

    _, sampled_result, stats = _overhead(plain, sampled, repeats)
    if sampled_result["sim"] != reference:
        raise SystemExit(
            "flight recorder changed simulated results — it must be "
            "observation-only"
        )
    snapshot["sampler"] = stats
    print(
        f"sampler overhead: {stats['overhead_fraction']:+.1%} "
        f"({stats['cpu_plain_seconds']:.3f}s -> "
        f"{stats['cpu_instrumented_seconds']:.3f}s)"
    )
    _, tsdb_result, stats = _overhead(plain, sampled_tsdb, repeats)
    if tsdb_result["sim"] != reference:
        raise SystemExit(
            "TSDB-fed flight recorder changed simulated results — the "
            "telemetry plane must be observation-only"
        )
    snapshot["sampler_tsdb"] = stats
    print(
        f"sampler+tsdb overhead: {stats['overhead_fraction']:+.1%} "
        f"({stats['cpu_plain_seconds']:.3f}s -> "
        f"{stats['cpu_instrumented_seconds']:.3f}s)"
    )
    # Causal-tracing overhead: the same governed suite with a full
    # Tracer attached — repair.task spans, per-flow events, parent and
    # follows-from links — versus the shared NULL_TRACER default.
    # Tracing must be observation-only (identical simulated results),
    # and the critical paths reconstructed from the captured events
    # must tile every repair's makespan exactly (the analysis runs
    # outside the timed region, so only event *emission* is charged).
    traced_events: list = []

    def traced():
        tracer = Tracer()
        result = suite_foreground_interference(tracer=tracer)
        traced_events[:] = tracer.events
        return result

    _, traced_result, stats = _overhead(plain, traced, repeats)
    if traced_result["sim"] != reference:
        raise SystemExit(
            "causal tracer changed simulated results — tracing must be "
            "observation-only"
        )
    report = critical_paths(traced_events)
    if not report.repairs or report.max_residual > 1e-9:
        raise SystemExit(
            "causal tracer: reconstructed critical paths do not tile "
            f"the traced repairs (max residual {report.max_residual!r})"
        )
    snapshot["tracer"] = stats
    print(
        f"tracer overhead: {stats['overhead_fraction']:+.1%} "
        f"({stats['cpu_plain_seconds']:.3f}s -> "
        f"{stats['cpu_instrumented_seconds']:.3f}s), "
        f"{len(report.repairs)} critical paths tiled exactly"
    )
    # Journal overhead: the full-node suite again with a durable repair
    # journal (real file, real fsyncs).  The journal must be write-only
    # in the fault-free path — identical simulated results — and cheap.
    def plain_full_node():
        return _full_node_once()

    def journaled():
        with tempfile.TemporaryDirectory() as tmp:
            with RepairJournal(Path(tmp) / "bench.jsonl") as journal:
                return _full_node_once(journal=journal)

    reference = snapshot["suites"]["full_node"]["sim"]
    _, journaled_result, stats = _overhead(
        plain_full_node, journaled, repeats
    )
    if journaled_result["sim"] != reference:
        raise SystemExit(
            "repair journal changed simulated results — the fault-free "
            "path must be byte-identical with journaling on"
        )
    snapshot["journal"] = stats
    print(
        f"journal overhead: {stats['overhead_fraction']:+.1%} "
        f"({stats['cpu_plain_seconds']:.3f}s -> "
        f"{stats['cpu_instrumented_seconds']:.3f}s)"
    )
    return snapshot


# ----------------------------------------------------------------------
# Comparison gate
# ----------------------------------------------------------------------
def _flatten_sim(sim, prefix: str = "") -> dict:
    flat = {}
    for key, value in sim.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_sim(value, path + "."))
        else:
            flat[path] = value
    return flat


def compare(current: dict, previous: dict, tolerance: float) -> list[str]:
    """Regression gate; returns the failures (empty = pass)."""
    if previous.get("version") != current["version"]:
        print(
            "previous snapshot has a different version — skipping the gate"
        )
        return []
    failures = []
    scale = current["calibration_seconds"] / max(
        previous.get("calibration_seconds", 0.0), 1e-9
    )
    print(f"calibration scale vs previous snapshot: {scale:.2f}x")
    for name, suite in current["suites"].items():
        before = previous.get("suites", {}).get(name)
        if before is None:
            print(f"{name}: not in previous snapshot, skipping")
            continue
        old_flat = _flatten_sim(before.get("sim", {}))
        for key, value in _flatten_sim(suite["sim"]).items():
            old = old_flat.get(key)
            if old is None:
                continue
            if isinstance(value, float) or isinstance(old, float):
                drifted = abs(value - old) > SIM_RTOL * max(
                    abs(value), abs(old), 1e-12
                )
            else:
                drifted = value != old
            if drifted:
                failures.append(
                    f"{name}: simulated metric {key} changed "
                    f"{old!r} -> {value!r} (behaviour drift, not noise)"
                )
        # Absolute slack floors the budget so millisecond suites are not
        # gated on scheduler noise; the heavy suites dominate their slack.
        budget = before["wall_seconds"] * scale * (1.0 + tolerance) + 0.05
        if suite["wall_seconds"] > budget:
            failures.append(
                f"{name}: wall {suite['wall_seconds']:.3f}s exceeds "
                f"{budget:.3f}s (previous {before['wall_seconds']:.3f}s "
                f"x {scale:.2f} calibration x {1 + tolerance:.2f} "
                "tolerance)"
            )
        else:
            print(
                f"{name}: wall {suite['wall_seconds']:.3f}s within "
                f"budget {budget:.3f}s"
            )
    # Floor-gated sections: simulated metrics are bit-stable for a
    # seed, so any drift is a behaviour change.  Wall times (and the
    # engine speedup / lifetime throughput) are machine-dependent; their
    # hard floors are enforced at collect time on every run, so they are
    # recorded here but not re-gated.
    for section in ("engine_scale", "lifetime", "storm"):
        before_section = previous.get(section)
        now_section = current.get(section)
        if before_section is None or now_section is None:
            continue
        old_flat = _flatten_sim(before_section.get("sim", {}))
        for key, value in _flatten_sim(now_section["sim"]).items():
            old = old_flat.get(key)
            if old is None:
                continue
            if isinstance(value, float) or isinstance(old, float):
                drifted = abs(value - old) > SIM_RTOL * max(
                    abs(value), abs(old), 1e-12
                )
            else:
                drifted = value != old
            if drifted:
                failures.append(
                    f"{section}: simulated metric {key} changed "
                    f"{old!r} -> {value!r} (behaviour drift, not noise)"
                )
    # Overhead gates: 5% relative plus a 100ms absolute slack.  The
    # relative term is the real gate; the absolute term is the noise
    # floor of the measurement itself — paired CPU-time deltas for
    # *identical* code span roughly +-100ms on a busy shared machine
    # (see ``_overhead``), and fixed per-run costs (a journal fsync) on
    # a millisecond-scale suite must not read as huge relative
    # overheads.  A genuine regression (the tracing plane cost +78% of
    # the suite before the restricted rate scans landed) clears both
    # terms by an order of magnitude.  Older snapshots predate some
    # sections; gate what the current run measured.
    labels = {
        "sampler": "flight recorder",
        "sampler_tsdb": "TSDB-fed flight recorder",
        "tracer": "causal tracer",
        "journal": "repair journal",
    }
    for section, label in labels.items():
        stats = current.get(section)
        if stats is None or "cpu_delta_seconds" not in stats:
            continue
        budget = stats["cpu_plain_seconds"] * 0.05 + 0.1
        if stats["cpu_delta_seconds"] > budget:
            failures.append(
                f"{label} overhead {stats['overhead_fraction']:.1%} "
                f"(+{stats['cpu_delta_seconds']:.3f}s on "
                f"{stats['cpu_plain_seconds']:.3f}s) exceeds the "
                f"5%+100ms budget ({budget:.3f}s)"
            )
        else:
            print(
                f"{label}: overhead {stats['overhead_fraction']:+.1%} "
                f"within budget"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_pr4.json"),
        help="snapshot file to write",
    )
    parser.add_argument(
        "--compare", type=Path, default=None, metavar="PATH",
        help="previous snapshot to gate against (skipped when absent)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed relative wall-clock regression (default 20%%)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per suite; the minimum wall time is kept",
    )
    args = parser.parse_args()
    previous = None
    if args.compare is not None and args.compare.exists():
        previous = json.loads(args.compare.read_text())
    elif args.compare is not None:
        print(f"no previous snapshot at {args.compare} — first run, no gate")
    snapshot = collect(args.repeats)
    args.out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"snapshot -> {args.out}")
    if previous is not None:
        failures = compare(snapshot, previous, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
