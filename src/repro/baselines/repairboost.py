"""RepairBoost-style full-node repair: balanced traffic scheduling.

RepairBoost [Lin et al., ATC'21, cited as [32]] improves *full-node* repair
by balancing upload and download traffic across the cluster rather than by
optimising any single repair's pipeline.  This baseline captures that idea
for comparison against PivotRepair's adaptive scheduling:

* each lost chunk becomes one single-chunk repair task whose requestor is
  chosen to level per-node *download* load across the batch;
* each task's k helpers are chosen to level per-node *upload* load;
* tasks run as plain chains over their balanced helper sets (RepairBoost
  pipelines transfers but does not shape congestion-aware trees).

The contrast with PivotRepair is deliberate: RepairBoost balances a static
traffic matrix up front, PivotRepair reacts to instantaneous bandwidth.
Under stable bandwidth the balanced matrix is strong; under rapidly
changing congestion it cannot adapt.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.tree import RepairTree
from repro.ec.stripe import Stripe
from repro.exceptions import PlanningError


@dataclass
class BalancedAssignment:
    """The balanced traffic plan for one full-node repair batch."""

    #: stripe id -> requestor node.
    requestors: dict[int, int] = field(default_factory=dict)
    #: stripe id -> ordered helper list (chain order).
    helpers: dict[int, list[int]] = field(default_factory=dict)
    #: resulting per-node traffic counts, in chunk units.
    download_load: dict[int, int] = field(default_factory=dict)
    upload_load: dict[int, int] = field(default_factory=dict)

    def tree_for(self, stripe: Stripe) -> RepairTree:
        return RepairTree.chain(
            self.requestors[stripe.stripe_id],
            self.helpers[stripe.stripe_id],
        )

    @property
    def max_download(self) -> int:
        return max(self.download_load.values(), default=0)

    @property
    def max_upload(self) -> int:
        return max(self.upload_load.values(), default=0)


def balance_assignments(
    stripes: Sequence[Stripe],
    failed_node: int,
    node_count: int,
) -> BalancedAssignment:
    """Greedy traffic balancing over a batch of single-chunk repairs.

    Stripes are processed in order; each picks the least-downloading
    eligible node as requestor and the k least-uploading survivors as
    helpers.  Greedy levelling is how RepairBoost approximates its
    flow-based balancing in practice.
    """
    assignment = BalancedAssignment(
        download_load={n: 0 for n in range(node_count)},
        upload_load={n: 0 for n in range(node_count)},
    )
    for stripe in stripes:
        lost_index = stripe.chunk_on_node(failed_node)
        if lost_index is None:
            raise PlanningError(
                f"stripe {stripe.stripe_id} lost nothing on node "
                f"{failed_node}"
            )
        holders = set(stripe.surviving_nodes(failed_node))
        eligible = [
            node
            for node in range(node_count)
            if node != failed_node and node not in holders
        ]
        if not eligible:
            raise PlanningError(
                f"stripe {stripe.stripe_id}: no requestor candidate"
            )
        requestor = min(
            eligible,
            key=lambda node: (assignment.download_load[node], node),
        )
        survivors = sorted(holders)
        k = stripe.code.k
        chosen = sorted(
            survivors,
            key=lambda node: (assignment.upload_load[node], node),
        )[:k]
        assignment.requestors[stripe.stripe_id] = requestor
        assignment.helpers[stripe.stripe_id] = chosen
        assignment.download_load[requestor] += 1
        for node in chosen:
            assignment.upload_load[node] += 1
        # Relaying along the chain also downloads at every interior node.
        for node in chosen[:-1]:
            assignment.download_load[node] += 1
    return assignment


def repair_full_node_balanced(
    network,
    stripes: Sequence[Stripe],
    failed_node: int,
    concurrency: int = 4,
    config=None,
    start_time: float = 0.0,
):
    """Run a full-node repair with RepairBoost-style balanced chains."""
    from repro.network.simulator import FluidSimulator
    from repro.repair.metrics import FullNodeResult, RepairResult
    from repro.repair.pipeline import ExecutionConfig, pipeline_bytes_per_edge

    if concurrency < 1:
        raise PlanningError("concurrency must be >= 1")
    config = config or ExecutionConfig()
    affected = [
        s for s in stripes if s.chunk_on_node(failed_node) is not None
    ]
    if not affected:
        raise PlanningError(f"node {failed_node} stores no chunk to repair")
    assignment = balance_assignments(affected, failed_node, len(network))
    sim = FluidSimulator(network, start_time=start_time, engine=config.engine)
    pending = list(affected)
    in_flight: dict[int, Stripe] = {}
    results: list[RepairResult] = []

    def submit(stripe: Stripe):
        tree = assignment.tree_for(stripe)
        handle = sim.submit_pipelined(
            tree.edges(),
            pipeline_bytes_per_edge(config, tree.depth()),
            label=f"RepairBoost-s{stripe.stripe_id}",
        )
        in_flight[handle.task_id] = stripe

    while pending or in_flight:
        while pending and len(in_flight) < concurrency:
            submit(pending.pop(0))
        for handle in sim.run_until_completion():
            in_flight.pop(handle.task_id)
            results.append(
                RepairResult(
                    scheme="RepairBoost",
                    planning_seconds=0.0,
                    transfer_seconds=handle.duration,
                    bmin=0.0,
                )
            )
    return FullNodeResult(
        scheme="RepairBoost",
        failed_node=failed_node,
        total_seconds=sim.now - start_time,
        task_results=results,
    )
