#!/usr/bin/env python3
"""Multi-failure recovery and degraded reads (Section IV-F).

Walks a (14, 10) cluster — Facebook's production code — through an
escalating failure scenario:

1. one node fails: its chunk is rebuilt through a PivotRepair tree;
2. a client reads a chunk on another failed node: served as a degraded
   read, reconstructed on the fly, nothing persisted;
3. a second and third node of the same stripe fail: the stripe falls back
   to conventional multi-chunk repair (decode + re-encode), and placement
   metadata tracks the rebuilt chunks' new homes;
4. five simultaneous failures exceed n - k = 4: correctly reported as
   unrecoverable.

Every rebuilt payload is verified byte-for-byte against the original.

Run:  python examples/multi_failure_recovery.py
"""

import numpy as np

from repro import BandwidthSnapshot, Cluster, PivotRepairPlanner, RSCode
from repro.exceptions import ClusterError

NODE_COUNT = 18
CHUNK = 2048


def snapshot(seed=1):
    rng = np.random.default_rng(seed)
    return BandwidthSnapshot(
        up={i: float(rng.integers(100, 1000)) for i in range(NODE_COUNT)},
        down={i: float(rng.integers(100, 1000)) for i in range(NODE_COUNT)},
    )


def spares(cluster, stripe, count):
    holders = set(stripe.placement)
    return [
        n
        for n in range(cluster.node_count)
        if n not in holders and cluster.nodes[n].alive
    ][:count]


def main() -> None:
    rng = np.random.default_rng(2024)
    cluster = Cluster(NODE_COUNT, RSCode(14, 10))
    stripe = cluster.write_random_stripes(1, CHUNK, rng)[0]
    planner = PivotRepairPlanner()
    originals = {
        i: cluster.nodes[stripe.placement[i]].read(stripe.chunk_id(i)).copy()
        for i in range(14)
    }
    print(f"(14,10) stripe placed on nodes {stripe.placement}\n")

    # 1. Single failure: pipelined tree repair.
    cluster.fail_node(stripe.placement[3])
    spare = spares(cluster, stripe, 1)[0]
    rebuilt = cluster.repair_stripe(
        planner, snapshot(1), stripe, [3], {3: spare}
    )
    assert np.array_equal(rebuilt[3], originals[3])
    print(f"1. chunk 3 rebuilt on N{spare} via pipelined tree "
          "(byte-verified)")

    # 2. Degraded read of a transiently failed chunk.
    cluster.fail_node(stripe.placement[7])
    client = spares(cluster, stripe, 2)[1]
    payload = cluster.degraded_read(planner, snapshot(2), stripe, 7, client)
    assert np.array_equal(payload, originals[7])
    assert not cluster.nodes[client].has(stripe.chunk_id(7))
    print(f"2. chunk 7 served to client N{client} as a degraded read "
          "(nothing persisted)")

    # 3. Two simultaneous losses: conventional multi-chunk fallback.
    cluster.fail_node(stripe.placement[11])
    replacement_nodes = spares(cluster, stripe, 3)[1:3]
    rebuilt = cluster.repair_stripe(
        planner, snapshot(3), stripe, [7, 11],
        {7: replacement_nodes[0], 11: replacement_nodes[1]},
    )
    assert np.array_equal(rebuilt[7], originals[7])
    assert np.array_equal(rebuilt[11], originals[11])
    print("3. chunks 7 and 11 rebuilt together via conventional "
          "multi-chunk repair (byte-verified)")

    # 4. Beyond n - k failures: unrecoverable, loudly.
    doomed = [0, 1, 2, 5, 6]
    for index in doomed:
        cluster.fail_node(stripe.placement[index])
    try:
        cluster.repair_stripe(
            planner, snapshot(4), stripe, doomed,
            {index: 0 for index in doomed},
        )
    except ClusterError as error:
        print(f"4. five failures on one (14,10) stripe: {error}")

    print("\nAll recoverable scenarios rebuilt byte-identical data.")


if __name__ == "__main__":
    main()
