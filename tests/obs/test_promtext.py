"""Prometheus exposition rendering and pure-python lint tests."""

from repro.obs import (
    MetricsRegistry,
    TimeSeriesDB,
    prometheus_lint,
    render_exposition,
)
from repro.obs.promtext import (
    render_registry,
    render_tsdb,
    sanitize_metric_name,
)


def registry_fixture():
    registry = MetricsRegistry()
    registry.counter("fg_requests", tenant="tenant-0").inc(10)
    registry.counter("fg_requests", tenant="tenant-1").inc(4)
    registry.gauge("bottleneck_utilization").set(0.8)
    registry.histogram("fg_read_latency", tenant="tenant-0").observe(0.002)
    registry.counter("bytes_up/3").inc(100)
    return registry


def tsdb_fixture():
    db = TimeSeriesDB()
    db.record("link_utilization", 0.5, 0.7, node=3, direction="up")
    db.record("link_utilization", 1.5, 0.9, node=3, direction="up")
    db.inc("fg_bytes_total", 1.0, 4096.0, tenant="tenant-0")
    return db


class TestRenderRegistry:
    def test_counters_and_labels(self):
        lines = render_registry(registry_fixture())
        text = "\n".join(lines) + "\n"
        assert "# TYPE fg_requests counter" in lines
        assert 'fg_requests{tenant="tenant-0"} 10.0' in lines
        assert 'fg_requests{tenant="tenant-1"} 4.0' in lines
        assert prometheus_lint(text) == []

    def test_histograms_render_as_summaries(self):
        lines = render_registry(registry_fixture())
        assert "# TYPE fg_read_latency summary" in lines
        quantiles = [
            line for line in lines
            if line.startswith("fg_read_latency{") and "quantile" in line
        ]
        assert len(quantiles) == 4
        assert any(line.startswith("fg_read_latency_sum") for line in lines)
        assert any(
            line.startswith("fg_read_latency_count") for line in lines
        )

    def test_slash_names_fold_into_key_label(self):
        lines = render_registry(registry_fixture())
        assert 'bytes_up{key="3"} 100.0' in lines
        assert all("/" not in line.split(" ")[0] for line in lines)


class TestRenderTsdb:
    def test_latest_point_with_millisecond_timestamp(self):
        lines = render_tsdb(tsdb_fixture())
        assert "# TYPE link_utilization gauge" in lines
        assert (
            'link_utilization{direction="up",node="3"} 0.9 1500' in lines
        )
        assert "# TYPE fg_bytes_total counter" in lines

    def test_empty_series_are_skipped(self):
        assert render_tsdb(TimeSeriesDB()) == []


class TestRenderExposition:
    def test_combined_document_lints_clean(self):
        text = render_exposition(
            registry=registry_fixture(), tsdb=tsdb_fixture()
        )
        assert text.endswith("\n")
        assert prometheus_lint(text) == []

    def test_registry_wins_duplicate_families(self):
        registry = MetricsRegistry()
        registry.counter("fg_bytes_total", tenant="tenant-0").inc(9999)
        text = render_exposition(registry=registry, tsdb=tsdb_fixture())
        assert text.count("# TYPE fg_bytes_total counter") == 1
        assert 'fg_bytes_total{tenant="tenant-0"} 9999.0' in text
        # The TSDB's copy of the family is dropped, not merged.
        assert "4096" not in text
        assert prometheus_lint(text) == []

    def test_empty_inputs_render_empty_document(self):
        assert render_exposition() == ""
        assert render_exposition(registry=MetricsRegistry()) == ""


class TestSanitize:
    def test_passthrough_and_cleanup(self):
        assert sanitize_metric_name("fg_requests") == "fg_requests"
        assert sanitize_metric_name("rate by-kind") == "rate_by_kind"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestLint:
    def test_clean_document(self):
        doc = (
            "# TYPE x counter\n"
            'x{tenant="a"} 1.0\n'
            'x{tenant="b"} 2.0 1500\n'
        )
        assert prometheus_lint(doc) == []

    def test_missing_trailing_newline(self):
        errors = prometheus_lint("# TYPE x counter\nx 1.0")
        assert any("newline" in error for error in errors)

    def test_bad_metric_name(self):
        errors = prometheus_lint("# TYPE 9bad counter\n")
        assert any("bad metric name" in error for error in errors)

    def test_unknown_type(self):
        errors = prometheus_lint("# TYPE x exotic\n")
        assert any("unknown metric type" in error for error in errors)

    def test_duplicate_type(self):
        doc = "# TYPE x counter\nx 1.0\n# TYPE x counter\nx 2.0\n"
        errors = prometheus_lint(doc)
        assert any("duplicate TYPE" in error for error in errors)

    def test_non_contiguous_family(self):
        doc = (
            "# TYPE x counter\n"
            "x 1.0\n"
            "# TYPE y counter\n"
            "y 1.0\n"
            "x 2.0\n"
        )
        errors = prometheus_lint(doc)
        assert any("not contiguous" in error for error in errors)

    def test_malformed_label_pair(self):
        errors = prometheus_lint("x{tenant=a} 1.0\n")
        assert any("malformed" in error for error in errors)

    def test_repeated_label_name(self):
        errors = prometheus_lint('x{a="1",a="2"} 1.0\n')
        assert any("repeated label name" in error for error in errors)

    def test_unparsable_value(self):
        errors = prometheus_lint("x banana\n")
        assert any("unparsable sample value" in error for error in errors)

    def test_special_values_allowed(self):
        assert prometheus_lint("x NaN\ny +Inf\nz -Inf\n") == []

    def test_duplicate_series(self):
        doc = 'x{a="1"} 1.0\nx{a="1"} 2.0\n'
        errors = prometheus_lint(doc)
        assert any("duplicate series" in error for error in errors)

    def test_free_form_comments_and_blank_lines_allowed(self):
        doc = "# just a note\n\n# HELP x whatever\n# TYPE x gauge\nx 1.0\n"
        assert prometheus_lint(doc) == []
