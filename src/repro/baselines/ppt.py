"""Parallel Pipeline Tree (PPT) baseline [Bai et al., ICPP'19].

PPT searches *all* pipelined trees for the one whose slowest link is fastest.
The search is exponential (the paper quotes Bell-number growth), which is
exactly what makes PPT unable to track rapidly-changing congestion.

This implementation enumerates every k-subset of the candidates and, for
each, every labelled tree rooted at the requestor via Prüfer sequences —
``C(n-1, k) * (k+1)^(k-1)`` trees in total.  Because that blows up fast, the
planner takes a tree budget:

* within budget — true exhaustive PPT (used for tests and small k);
* over budget — the planner measures the per-tree evaluation cost on a
  sample, reports the projected full enumeration time in
  ``RepairPlan.extrapolated_seconds``, and falls back to Algorithm 1's tree
  for the transfer itself (Theorem 1 guarantees the same optimal B_min, and
  the paper likewise reports PPT's k=10 times as projections while its
  transfer time matches the optimum).
"""

from __future__ import annotations

import itertools
import math
import time
from collections.abc import Iterator, Sequence

from repro.core.algorithm import build_pivot_tree
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.plan import RepairPlan, RepairPlanner
from repro.core.tree import RepairTree
from repro.exceptions import PlanningError

#: Default enumeration budget (number of trees evaluated exhaustively).
DEFAULT_TREE_BUDGET = 1_000_000


def prufer_decode(sequence: Sequence[int], size: int) -> list[tuple[int, int]]:
    """Decode a Prüfer sequence over labels 0..size-1 into tree edges."""
    if size < 2:
        raise PlanningError("Prüfer decoding needs at least two labels")
    if len(sequence) != size - 2:
        raise PlanningError(
            f"sequence length {len(sequence)} != size-2 = {size - 2}"
        )
    degree = [1] * size
    for label in sequence:
        if not 0 <= label < size:
            raise PlanningError(f"label {label} outside 0..{size - 1}")
        degree[label] += 1
    edges: list[tuple[int, int]] = []
    # ptr scans for the smallest leaf; `leaf` tracks the current one.
    ptr = 0
    while degree[ptr] != 1:
        ptr += 1
    leaf = ptr
    for label in sequence:
        edges.append((leaf, label))
        degree[label] -= 1
        if degree[label] == 1 and label < ptr:
            leaf = label
        else:
            ptr += 1
            while degree[ptr] != 1:
                ptr += 1
            leaf = ptr
    # The remaining leaf always joins the highest label (standard decode).
    edges.append((leaf, size - 1))
    return edges


def rooted_trees(labels: Sequence[int], root: int) -> Iterator[dict[int, int]]:
    """Yield child -> parent maps of every labelled tree rooted at ``root``.

    ``labels`` must include ``root``; there are ``m^(m-2)`` trees for
    ``m = len(labels)``.
    """
    m = len(labels)
    if root not in labels:
        raise PlanningError("root must be one of the labels")
    if m == 1:
        raise PlanningError("a repair tree needs at least one helper")
    if m == 2:
        other = next(x for x in labels if x != root)
        yield {other: root}
        return
    index_of = {label: i for i, label in enumerate(labels)}
    root_index = index_of[root]
    adjacency: list[list[int]] = [[] for _ in range(m)]
    for sequence in itertools.product(range(m), repeat=m - 2):
        for bucket in adjacency:
            bucket.clear()
        for a, b in prufer_decode(sequence, m):
            adjacency[a].append(b)
            adjacency[b].append(a)
        parents: dict[int, int] = {}
        stack = [root_index]
        seen = {root_index}
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    parents[labels[neighbour]] = labels[node]
                    stack.append(neighbour)
        yield parents


def tree_count(
    candidate_count: int, k: int, helper_selection: str = "first_k"
) -> int:
    """Exact number of trees PPT enumerates.

    ``first_k`` (PPT proper): all labelled trees over the k chosen helpers
    plus the requestor — ``(k+1)^(k-1)``.  ``all_subsets`` (the global
    brute force used to verify Theorem 1): additionally over every
    k-subset of the candidates — ``C(n-1, k) * (k+1)^(k-1)``.
    """
    shapes = (k + 1) ** max(k - 1, 0)
    if helper_selection in ("first_k", "top_theo"):
        return shapes
    if helper_selection == "all_subsets":
        return math.comb(candidate_count, k) * shapes
    raise PlanningError(f"unknown helper selection {helper_selection!r}")


def _bmin_of_parents(
    snapshot: BandwidthSnapshot, requestor: int, parents: dict[int, int]
) -> float:
    """B_min (Lemma 1) computed directly from parent pointers, no tree obj."""
    child_count: dict[int, int] = {}
    for parent in parents.values():
        child_count[parent] = child_count.get(parent, 0) + 1
    bmin = snapshot.down_of(requestor) / child_count[requestor]
    for node in parents:
        kids = child_count.get(node, 0)
        if kids:
            value = min(
                snapshot.up_of(node), snapshot.down_of(node) / kids
            )
        else:
            value = snapshot.up_of(node)
        if value < bmin:
            bmin = value
    return bmin


class PPTPlanner(RepairPlanner):
    """Exhaustive tree enumeration with a budget + extrapolation.

    Helper selection modes:

    * ``top_theo`` (default) — PPT in a non-uniform network: the k helpers
      with the largest available node bandwidth are fixed up front, then
      every tree shape over them is enumerated.  Matches the paper's
      behaviour where PPT's *transfer* stays near-optimal for small k while
      its running time explodes with k.
    * ``first_k`` — bandwidth-oblivious helper choice (as for RP), shape
      enumeration only.
    * ``all_subsets`` — additionally enumerates every k-subset of helpers:
      the global brute force the tests compare Algorithm 1 against
      (Theorem 1).
    """

    name = "PPT"

    def __init__(
        self,
        tree_budget: int = DEFAULT_TREE_BUDGET,
        helper_selection: str = "top_theo",
    ):
        if tree_budget < 1:
            raise PlanningError("tree budget must be at least 1")
        if helper_selection not in ("first_k", "top_theo", "all_subsets"):
            raise PlanningError(
                f"unknown helper selection {helper_selection!r}"
            )
        self.tree_budget = tree_budget
        self.helper_selection = helper_selection

    def _helper_pool(
        self,
        snapshot: BandwidthSnapshot,
        candidates: list[int],
        k: int,
    ) -> list[int]:
        if self.helper_selection == "top_theo":
            ranked = sorted(
                candidates, key=lambda node: (-snapshot.theo(node), node)
            )
            return ranked[:k]
        return candidates[:k]

    def _build(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: list[int],
        k: int,
    ) -> RepairPlan:
        total = tree_count(len(candidates), k, self.helper_selection)
        if total <= self.tree_budget:
            return self._exhaustive(snapshot, requestor, candidates, k, total)
        return self._capped(snapshot, requestor, candidates, k, total)

    def _exhaustive(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: list[int],
        k: int,
        total: int,
    ) -> RepairPlan:
        best_bmin = -1.0
        best_parents: dict[int, int] | None = None
        examined = 0
        if self.helper_selection == "all_subsets":
            subsets = itertools.combinations(candidates, k)
        else:
            subsets = [tuple(self._helper_pool(snapshot, candidates, k))]
        for subset in subsets:
            labels = [requestor, *subset]
            for parents in rooted_trees(labels, requestor):
                examined += 1
                bmin = _bmin_of_parents(snapshot, requestor, parents)
                if bmin > best_bmin:
                    best_bmin = bmin
                    best_parents = dict(parents)
        assert best_parents is not None
        tree = RepairTree(requestor, best_parents)
        return RepairPlan(
            scheme=self.name,
            requestor=requestor,
            helpers=tree.helpers,
            tree=tree,
            bmin=best_bmin,
            trees_examined=examined,
            notes={"total_trees": total, "capped": False},
        )

    def _capped(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: list[int],
        k: int,
        total: int,
    ) -> RepairPlan:
        # Measure per-tree evaluation cost on a sample of real trees.
        sample_budget = min(self.tree_budget, 2000)
        started = time.perf_counter()
        examined = 0
        if self.helper_selection == "all_subsets":
            subset = tuple(candidates[:k])
        else:
            subset = tuple(self._helper_pool(snapshot, candidates, k))
        labels = [requestor, *subset]
        for parents in rooted_trees(labels, requestor):
            _bmin_of_parents(snapshot, requestor, parents)
            examined += 1
            if examined >= sample_budget:
                break
        elapsed = time.perf_counter() - started
        per_tree = elapsed / max(examined, 1)
        # Theorem 1 (applied to the searched helper pool): Algorithm 1's
        # tree over the same pool has the optimal B_min the enumeration
        # would find, so use it for the transfer.
        if self.helper_selection == "all_subsets":
            pool = candidates
        else:
            pool = self._helper_pool(snapshot, candidates, k)
        tree = build_pivot_tree(snapshot, requestor, pool, k)
        return RepairPlan(
            scheme=self.name,
            requestor=requestor,
            helpers=tree.helpers,
            tree=tree,
            bmin=tree.bmin(snapshot),
            trees_examined=examined,
            extrapolated_seconds=per_tree * total,
            notes={
                "total_trees": total,
                "capped": True,
                "per_tree_seconds": per_tree,
            },
        )
