"""Failure detection and retry policy for fault-aware executors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FaultError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How an executor reacts when a repair task stops making progress.

    A helper crash (or chunk-read error) on a task's tree is *detected*
    ``detection_timeout`` simulated seconds after it happens — the
    heartbeat/RPC-timeout latency of a real system.  A task whose transfer
    rate sits at zero for ``detection_timeout`` (a stalled helper, a
    congestion-collapsed link) is declared failed too, so a repair can
    never hang.  Each retry waits an exponential backoff
    (``backoff_base * backoff_factor**retry``) before re-planning;
    ``max_retries`` bounds the number of re-plans before the repair
    aborts with a ``RepairFailed`` result.
    """

    detection_timeout: float = 0.5
    max_retries: int = 3
    backoff_base: float = 0.25
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.detection_timeout < 0:
            raise FaultError("detection_timeout cannot be negative")
        if self.max_retries < 0:
            raise FaultError("max_retries cannot be negative")
        if self.backoff_base < 0:
            raise FaultError("backoff_base cannot be negative")
        if self.backoff_factor < 1.0:
            raise FaultError("backoff_factor must be >= 1")

    def backoff(self, retry: int) -> float:
        """Seconds to wait before retry number ``retry`` (0-based)."""
        if retry < 0:
            raise FaultError(f"retry index {retry} is negative")
        return self.backoff_base * self.backoff_factor**retry

    @classmethod
    def from_spec(cls, spec: str) -> RetryPolicy:
        """Parse ``timeout=0.5,retries=3,backoff=0.25x2``.

        Every key is optional; omitted keys keep their defaults.
        """
        kwargs: dict[str, float | int] = {}
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                key, value = entry.split("=", 1)
            except ValueError:
                raise FaultError(
                    f"malformed retry-policy entry {entry!r}"
                ) from None
            try:
                if key == "timeout":
                    kwargs["detection_timeout"] = float(value)
                elif key == "retries":
                    kwargs["max_retries"] = int(value)
                elif key == "backoff":
                    if "x" in value:
                        base, factor = value.split("x", 1)
                        kwargs["backoff_base"] = float(base)
                        kwargs["backoff_factor"] = float(factor)
                    else:
                        kwargs["backoff_base"] = float(value)
                else:
                    raise FaultError(f"unknown retry-policy key {key!r}")
            except ValueError:
                raise FaultError(
                    f"malformed retry-policy value {entry!r}"
                ) from None
        return cls(**kwargs)
