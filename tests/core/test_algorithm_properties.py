"""Deeper property-based tests for Algorithm 1's structure and guarantees.

Complements ``test_algorithm.py``'s Theorem 1 check with invariants on the
algorithm's *internals*: Lemma 2's claim about the Inserting step, the
Replacing step's monotonicity, and B_min's response to bandwidth changes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ppt import rooted_trees
from repro.core.algorithm import (
    build_pivot_tree,
    insert_pivots,
    replace_leaves,
    select_pivots,
)
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.tree import RepairTree


def snap(up, down):
    return BandwidthSnapshot(up=up, down=down)


def random_snapshot(node_count, seed, low=1, high=1000):
    rng = np.random.default_rng(seed)
    return snap(
        {i: float(rng.integers(low, high)) for i in range(node_count)},
        {i: float(rng.integers(low, high)) for i in range(node_count)},
    )


def min_nonleaf_bandwidth(tree: RepairTree, view: BandwidthSnapshot) -> float:
    """min{S_nl} of Lemma 2: the non-leaf terms of B_min."""
    nodes = [tree.root, *tree.non_leaf_helpers()]
    return min(tree.node_bottleneck(view, node) for node in nodes)


class TestLemma2InsertingOptimality:
    """The Inserting step maximises min{S_nl} over trees on the same
    pivot set (proved by induction in the paper's appendix; checked here
    by brute force over every labelled tree shape)."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=4),
    )
    def test_inserting_maximises_min_snl(self, seed, k):
        view = random_snapshot(k + 1, seed)
        pivots = select_pivots(view, list(range(1, k + 1)), k)
        parents = insert_pivots(view, 0, pivots)
        greedy = RepairTree(0, parents)
        greedy_value = min_nonleaf_bandwidth(greedy, view)
        best = max(
            min_nonleaf_bandwidth(RepairTree(0, candidate), view)
            for candidate in rooted_trees([0, *pivots], 0)
        )
        assert greedy_value == pytest.approx(best, rel=1e-9)


class TestReplacingMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=3),
    )
    def test_replacing_never_lowers_bmin(self, seed, k, extra):
        node_count = 1 + k + extra
        view = random_snapshot(node_count, seed)
        candidates = list(range(1, node_count))
        pivots = select_pivots(view, candidates, k)
        parents = insert_pivots(view, 0, pivots)
        before = RepairTree(0, dict(parents)).bmin(view)
        unselected = [n for n in candidates if n not in set(pivots)]
        replaced = replace_leaves(view, 0, parents, unselected)
        after = RepairTree(0, replaced).bmin(view)
        assert after >= before - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=5),
    )
    def test_replacing_preserves_tree_shape(self, seed, k):
        node_count = 1 + k + 3
        view = random_snapshot(node_count, seed)
        candidates = list(range(1, node_count))
        pivots = select_pivots(view, candidates, k)
        parents = insert_pivots(view, 0, pivots)
        shape_before = sorted(
            len([c for c, p in parents.items() if p == node])
            for node in [0, *parents]
        )
        unselected = [n for n in candidates if n not in set(pivots)]
        replaced = replace_leaves(view, 0, parents, unselected)
        shape_after = sorted(
            len([c for c, p in replaced.items() if p == node])
            for node in [0, *replaced]
        )
        assert shape_before == shape_after


class TestBminMonotonicity:
    """More bandwidth can never hurt the optimal tree's B_min."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=1.0, max_value=3.0),
    )
    def test_uniform_scaling_scales_bmin(self, seed, factor):
        view = random_snapshot(8, seed)
        candidates = list(range(1, 8))
        base = build_pivot_tree(view, 0, candidates, 5).bmin(view)
        scaled_view = snap(
            {n: v * factor for n, v in view.up.items()},
            {n: v * factor for n, v in view.down.items()},
        )
        scaled = build_pivot_tree(scaled_view, 0, candidates, 5).bmin(
            scaled_view
        )
        assert scaled == pytest.approx(base * factor, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=7),
    )
    def test_raising_one_node_never_lowers_bmin(self, seed, node):
        view = random_snapshot(8, seed)
        candidates = list(range(1, 8))
        base = build_pivot_tree(view, 0, candidates, 5).bmin(view)
        boosted_view = snap(
            {n: (v * 2 if n == node else v) for n, v in view.up.items()},
            {n: (v * 2 if n == node else v) for n, v in view.down.items()},
        )
        boosted = build_pivot_tree(boosted_view, 0, candidates, 5).bmin(
            boosted_view
        )
        assert boosted >= base - 1e-9


class TestPivotSelectionProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=6),
    )
    def test_pivots_dominate_unselected_by_theo(self, seed, k):
        view = random_snapshot(10, seed)
        candidates = list(range(1, 10))
        pivots = select_pivots(view, candidates, k)
        unselected = [n for n in candidates if n not in set(pivots)]
        if unselected:
            weakest_pivot = min(view.theo(p) for p in pivots)
            strongest_out = max(view.theo(u) for u in unselected)
            assert weakest_pivot >= strongest_out

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_descending_theo_order(self, seed):
        view = random_snapshot(9, seed)
        pivots = select_pivots(view, list(range(1, 9)), 6)
        theos = [view.theo(p) for p in pivots]
        assert theos == sorted(theos, reverse=True)


class TestReplanOptimality:
    """Mid-repair re-planning is as optimal as planning from scratch:
    after a helper crash, the tree Algorithm 1 rebuilds over the
    survivors reaches the brute-force-optimal B_min on that helper set
    (the Theorem 1 oracle, restricted to survivors)."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=2),
    )
    def test_replan_bmin_matches_brute_force(self, seed, k, extra, dead):
        from repro.baselines.ppt import PPTPlanner
        from repro.core.algorithm import replan_pivot_tree

        node_count = 1 + k + extra + dead
        view = random_snapshot(node_count, seed)
        candidates = list(range(1, node_count))
        failed = candidates[:dead]
        survivors = candidates[dead:]
        tree = replan_pivot_tree(view, 0, candidates, k, failed)
        assert set(tree.helpers).isdisjoint(failed)
        oracle = PPTPlanner(
            tree_budget=10**6, helper_selection="all_subsets"
        )
        best = oracle.plan(view, 0, survivors, k)
        assert tree.bmin(view) == pytest.approx(best.bmin, rel=1e-9)

    def test_replan_rejects_dead_requestor(self):
        from repro.core.algorithm import replan_pivot_tree
        from repro.exceptions import PlanningError

        view = random_snapshot(6, 0)
        with pytest.raises(PlanningError):
            replan_pivot_tree(view, 0, [1, 2, 3, 4, 5], 4, failed=[0, 1])

    def test_replan_rejects_too_few_survivors(self):
        from repro.core.algorithm import replan_pivot_tree
        from repro.exceptions import PlanningError

        view = random_snapshot(6, 1)
        with pytest.raises(PlanningError):
            replan_pivot_tree(view, 0, [1, 2, 3, 4, 5], 4, failed=[1, 2])
