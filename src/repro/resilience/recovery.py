"""Master crash recovery: journaled, idempotent full-node repair.

The byte-accurate full-node repair path (``cluster.master`` adopting one
rebuilt chunk after another) has a single point of failure: the master.
This module makes it crash-safe by checkpointing the scheduling state into
the repair journal before any chunk moves, and journaling every adoption:

* ``master_checkpoint`` — the Eq. 3-ranked stripe queue and per-stripe
  status, written once at the start of a run (a resumed run reuses the
  recorded queue rather than re-ranking, so the plan order survives the
  crash even if bandwidths changed);
* ``chunk_adopted`` — appended *after* the rebuilt chunk is stored and the
  stripe relocated, so replay never trusts an adoption that did not
  complete.

Replay (:func:`recover_full_node`) walks the checkpointed queue and skips
every stripe with a ``chunk_adopted`` record.  Replaying is idempotent:
running recovery twice adopts nothing the second time and leaves the
cluster byte-identical, because the journal — not cluster introspection —
decides what is done.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.scheduler import SchedulerConfig, recommendation_value
from repro.obs.tracer import NULL_TRACER
from repro.repair.fullnode import choose_requestor
from repro.resilience.journal import JournalError, RepairJournal


@dataclass
class MasterRecoveryResult:
    """Outcome of one (possibly partial) journaled full-node run."""

    #: Stripe ids whose chunks this run rebuilt and adopted, in order.
    adopted: list[int] = field(default_factory=list)
    #: Stripe ids skipped because the journal already records adoption.
    skipped: list[int] = field(default_factory=list)
    #: The checkpointed Eq. 3 queue the run worked through.
    queue: list[int] = field(default_factory=list)
    #: True when the run stopped early (simulated master crash).
    crashed: bool = False

    @property
    def completed(self) -> bool:
        return not self.crashed and (
            len(self.adopted) + len(self.skipped) == len(self.queue)
        )


def run_full_node_journaled(
    cluster,
    planner,
    network,
    failed_node: int,
    journal: RepairJournal,
    scheduler: SchedulerConfig | None = None,
    at: float = 0.0,
    crash_after: int | None = None,
    tracer=NULL_TRACER,
) -> MasterRecoveryResult:
    """Repair every chunk lost on ``failed_node``, journaling each step.

    On first invocation the Eq. 3 queue is computed and checkpointed; a
    journal that already holds a ``master_checkpoint`` replays its queue
    instead (the recovery path — call :func:`recover_full_node` for
    clarity).  ``crash_after`` stops the run after that many adoptions,
    simulating the master dying mid-schedule.
    """
    scheduler = scheduler or SchedulerConfig()
    snapshot = BandwidthSnapshot.from_network(network, at)
    lost = cluster.lost_chunks(failed_node)
    by_id = {stripe.stripe_id: (stripe, index) for stripe, index in lost}

    checkpoint = journal.last("master_checkpoint")
    if checkpoint is None:
        queue = _ranked_queue(
            cluster, planner, snapshot, lost, failed_node, scheduler,
            at, tracer,
        )
        journal.append(
            "master_checkpoint", t=at, queue=queue,
            status={str(sid): "pending" for sid in queue},
            failed_node=failed_node,
        )
        if tracer.enabled:
            tracer.instant(
                "master.checkpoint", t=at, track="master",
                stripes=len(queue), failed_node=failed_node,
            )
    else:
        queue = [int(sid) for sid in checkpoint.data["queue"]]
        if int(checkpoint.data.get("failed_node", failed_node)) != failed_node:
            raise JournalError(
                "journal checkpoint is for a different failed node"
            )
        if tracer.enabled:
            tracer.instant(
                "master.recover", t=at, track="master",
                stripes=len(queue),
                already_adopted=len(journal.adopted_stripes()),
            )

    result = MasterRecoveryResult(queue=list(queue))
    adopted_before = journal.adopted_stripes()
    for stripe_id in queue:
        if stripe_id in adopted_before or stripe_id not in by_id:
            # Already adopted (journal says so, or the stripe has been
            # relocated off the failed node) — never re-repair.
            result.skipped.append(stripe_id)
            continue
        stripe, lost_index = by_id[stripe_id]
        requestor = choose_requestor(
            snapshot, stripe, failed_node, cluster.node_count
        )
        plan, _ = cluster.repair_chunk(
            planner, snapshot, stripe, lost_index, requestor
        )
        journal.append(
            "chunk_adopted", t=at, stripe=stripe_id,
            requestor=requestor, scheme=plan.scheme,
        )
        result.adopted.append(stripe_id)
        if crash_after is not None and len(result.adopted) >= crash_after:
            result.crashed = True
            break
    return result


def recover_full_node(
    cluster,
    planner,
    network,
    failed_node: int,
    journal: RepairJournal,
    scheduler: SchedulerConfig | None = None,
    at: float = 0.0,
    tracer=NULL_TRACER,
) -> MasterRecoveryResult:
    """Replay a journal after a master crash and finish the repair.

    Requires a ``master_checkpoint`` in the journal (the crashed run wrote
    it before adopting anything).  Idempotent: replaying a journal whose
    queue is fully adopted performs no work.
    """
    if journal.last("master_checkpoint") is None:
        raise JournalError(
            "cannot recover: journal holds no master checkpoint"
        )
    return run_full_node_journaled(
        cluster, planner, network, failed_node, journal,
        scheduler=scheduler, at=at, tracer=tracer,
    )


def _ranked_queue(
    cluster, planner, snapshot, lost, failed_node, scheduler, at, tracer
) -> list[int]:
    """Eq. 3 ranking of the lost stripes with an empty running set."""
    ranked: list[tuple[float, int]] = []
    for stripe, lost_index in lost:
        requestor = choose_requestor(
            snapshot, stripe, failed_node, cluster.node_count
        )
        candidates = [
            node
            for node in stripe.surviving_nodes(failed_node)
            if node != requestor
        ]
        plan = planner.plan(snapshot, requestor, candidates, cluster.code.k)
        value = recommendation_value(
            plan.tree, plan.bmin, [], at, scheduler, tracer=tracer
        )
        ranked.append((value, stripe.stripe_id))
    ranked.sort(key=lambda pair: (-pair[0], pair[1]))
    return [stripe_id for _, stripe_id in ranked]
