"""Observability: structured event tracing, metrics, timeline export.

Three pieces, all dependency-free and usable independently:

* :mod:`repro.obs.tracer` — a structured event tracer.  Modules accept a
  :class:`Tracer` and emit *instant* events and *spans* carrying simulated
  time (and optionally wall time).  The default :data:`NULL_TRACER` is a
  zero-cost no-op: hot paths guard on ``tracer.enabled`` and never build
  an event payload when tracing is off.
* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  histograms with percentile summaries).  Repair entry points fill one
  per run and expose its snapshot as the ``telemetry`` field of
  :class:`~repro.repair.metrics.RepairResult` /
  :class:`~repro.repair.metrics.FullNodeResult`.
* :mod:`repro.obs.export` — exporters: JSONL (one event per line,
  deterministic by default) and Chrome ``trace_event`` JSON loadable in
  ``chrome://tracing`` / Perfetto, one track per node plus planner and
  scheduler tracks.
"""

from repro.obs.export import (
    events_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "events_from_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "write_trace",
]
