"""Computation-aware repair planning (Section IV-F, "Computation overhead").

"One simple way to address the computation overhead issue is to check the
computation capacity states of all nodes and identify which nodes have
enough CPU cycles.  We then run Algorithm 1 only based on the selected
nodes.  We may also partition time into timeslots, each of which only
schedules a fraction of slice-repair tasks across nodes [51]."

Both ideas are implemented here:

* :class:`ComputeView` holds per-node available CPU (as a fraction of one
  core, or any consistent unit) and filters helper candidates;
* :class:`ComputeAwarePlanner` wraps any planner, restricting its candidate
  pool to compute-capable nodes (falling back gracefully when that leaves
  fewer than k candidates);
* :func:`timeslot_schedule` partitions a batch of repair tasks into
  timeslots so that no node computes for more than a budgeted number of
  tasks per slot (the Dayu-style [51] fraction-per-timeslot discipline).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.plan import RepairPlan, RepairPlanner
from repro.core.tree import RepairTree
from repro.exceptions import PlanningError


@dataclass(frozen=True)
class ComputeView:
    """Available computation capacity per node at one instant."""

    available_cpu: Mapping[int, float]

    def __post_init__(self) -> None:
        for node, cpu in self.available_cpu.items():
            if cpu < 0:
                raise PlanningError(f"negative CPU on node {node}")

    def cpu_of(self, node: int) -> float:
        try:
            return self.available_cpu[node]
        except KeyError:
            raise PlanningError(f"node {node} not in compute view") from None

    def capable_nodes(self, minimum: float) -> list[int]:
        """Nodes with at least ``minimum`` CPU available."""
        return sorted(
            node
            for node, cpu in self.available_cpu.items()
            if cpu >= minimum
        )

    def filter_candidates(
        self, candidates: Sequence[int], minimum: float
    ) -> list[int]:
        """Candidates with enough CPU, preserving the input order."""
        return [
            node for node in candidates if self.cpu_of(node) >= minimum
        ]


class ComputeAwarePlanner(RepairPlanner):
    """Run any planner only on nodes with enough CPU cycles.

    Non-leaf tree nodes do the GF multiply-XOR work, so the filter applies
    to all candidates (any of them may become a relay).  If filtering
    leaves fewer than k candidates, nodes are added back in decreasing CPU
    order — a repair must proceed even on a busy cluster.
    """

    def __init__(
        self,
        inner: RepairPlanner,
        compute: ComputeView,
        min_cpu: float = 0.25,
    ):
        if min_cpu < 0:
            raise PlanningError("min_cpu cannot be negative")
        self.inner = inner
        self.compute = compute
        self.min_cpu = min_cpu
        self.name = f"{inner.name}+compute"

    def _build(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: list[int],
        k: int,
    ) -> RepairPlan:
        capable = self.compute.filter_candidates(candidates, self.min_cpu)
        if len(capable) < k:
            busy = sorted(
                (node for node in candidates if node not in set(capable)),
                key=lambda node: (-self.compute.cpu_of(node), node),
            )
            capable = capable + busy[: k - len(capable)]
        plan = self.inner.plan(snapshot, requestor, capable, k)
        plan.scheme = self.name
        plan.notes["compute_filtered"] = len(candidates) - len(capable)
        return plan


def compute_load_of(tree: RepairTree) -> dict[int, int]:
    """Per-node compute work of one repair task, in partial-sum units.

    Every helper performs one coefficient multiplication; every non-leaf
    node additionally XORs one partial result per child.
    """
    load: dict[int, int] = {}
    for helper in tree.helpers:
        load[helper] = 1 + tree.child_count(helper)
    load[tree.root] = tree.child_count(tree.root)
    return load


def timeslot_schedule(
    trees: Sequence[RepairTree],
    per_node_budget: int,
) -> list[list[int]]:
    """Partition repair tasks into timeslots bounding per-node compute.

    Greedy first-fit: task i goes into the earliest slot where adding its
    compute load keeps every node within ``per_node_budget`` units.

    Returns a list of slots, each a list of task indices.
    """
    if per_node_budget < 1:
        raise PlanningError("per-node budget must be at least 1")
    slots: list[list[int]] = []
    slot_loads: list[dict[int, int]] = []
    for index, tree in enumerate(trees):
        load = compute_load_of(tree)
        if any(units > per_node_budget for units in load.values()):
            raise PlanningError(
                f"task {index} alone exceeds the per-node budget"
            )
        placed = False
        for slot, existing in zip(slots, slot_loads):
            if all(
                existing.get(node, 0) + units <= per_node_budget
                for node, units in load.items()
            ):
                slot.append(index)
                for node, units in load.items():
                    existing[node] = existing.get(node, 0) + units
                placed = True
                break
        if not placed:
            slots.append([index])
            slot_loads.append(dict(load))
    return slots
