"""Rack-aware pipelined repair (the paper's Section IV-F future work).

"To address the topology heterogeneity, we can construct the PivotRepair's
pipelining tree such that the pipelined repair can be performed locally
within racks as much as possible."  This module implements that idea:

* :class:`RackSnapshot` extends the flat bandwidth view with rack
  membership and per-rack link bandwidths;
* :func:`rack_bmin` generalises Lemma 1 — a tree's bottleneck now also
  includes each rack uplink/downlink divided by the number of cross-rack
  tree edges traversing it;
* :class:`RackAwarePivotPlanner` arranges the selected pivots so every rack
  aggregates locally into one *rack head* and only rack heads cross the
  oversubscribed core, minimising cross-rack edges to at most one per rack.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.algorithm import insert_pivots, select_pivots
from repro.core.bandwidth_view import BandwidthSnapshot
from repro.core.plan import RepairPlan, RepairPlanner
from repro.core.tree import RepairTree
from repro.exceptions import PlanningError
from repro.network.hierarchical import RackNetwork


@dataclass(frozen=True)
class RackSnapshot(BandwidthSnapshot):
    """Bandwidth view of a two-level (rack) topology at one instant."""

    rack_of: Mapping[int, int] = field(default_factory=dict)
    rack_up: Mapping[int, float] = field(default_factory=dict)
    rack_down: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        if set(self.rack_of) != set(self.up):
            raise PlanningError("rack_of must cover exactly the nodes")
        for node, rack in self.rack_of.items():
            if rack not in self.rack_up or rack not in self.rack_down:
                raise PlanningError(
                    f"node {node} in rack {rack} without rack link data"
                )

    @classmethod
    def from_network(cls, network: RackNetwork, t: float) -> RackSnapshot:
        return cls(
            up={n: network.up_at(n, t) for n in network.node_ids},
            down={n: network.down_at(n, t) for n in network.node_ids},
            time=t,
            rack_of={n: network.rack_of(n) for n in network.node_ids},
            rack_up={
                r: network.rack_up_at(r, t)
                for r in range(network.rack_count)
            },
            rack_down={
                r: network.rack_down_at(r, t)
                for r in range(network.rack_count)
            },
        )

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of[a] == self.rack_of[b]


def cross_rack_edges(
    tree: RepairTree, rack_of: Mapping[int, int]
) -> list[tuple[int, int]]:
    """The tree's (child, parent) edges whose endpoints sit in two racks."""
    return [
        (child, parent)
        for child, parent in tree.edges()
        if rack_of[child] != rack_of[parent]
    ]


def rack_bmin(tree: RepairTree, snapshot: RackSnapshot) -> float:
    """Bottleneck bandwidth of a tree on a rack topology.

    Extends Lemma 1: besides every node's term, each rack uplink carries
    one pipeline stream per cross-rack edge leaving the rack (and its
    downlink one per cross-rack edge entering it), so those links divide
    among the streams like a relaying node's downlink does.
    """
    bottleneck = tree.bmin(snapshot)
    out_count: dict[int, int] = {}
    in_count: dict[int, int] = {}
    for child, parent in cross_rack_edges(tree, snapshot.rack_of):
        src_rack = snapshot.rack_of[child]
        dst_rack = snapshot.rack_of[parent]
        out_count[src_rack] = out_count.get(src_rack, 0) + 1
        in_count[dst_rack] = in_count.get(dst_rack, 0) + 1
    for rack, count in out_count.items():
        bottleneck = min(bottleneck, snapshot.rack_up[rack] / count)
    for rack, count in in_count.items():
        bottleneck = min(bottleneck, snapshot.rack_down[rack] / count)
    return bottleneck


class RackAwarePivotPlanner(RepairPlanner):
    """Pivot-based tree construction that aggregates within racks first.

    The k pivots are chosen by theo(.) exactly as in Algorithm 1.  Pivots
    are then grouped by rack; each remote group runs Algorithm 1's
    Inserting step locally, rooted at the group's best relay (largest
    min(up, down)), so only that *rack head* uploads across the core — at
    most one cross-rack edge leaves each rack.

    The heads themselves can be arranged in two ways with different rack
    footprints: a *star* (every head uploads to the requestor; the
    requestor rack's downlink divides among the heads) or a *chain* (heads
    relay one another; every rack link carries at most one stream).  The
    planner builds both, also scores Algorithm 1's rack-oblivious flat
    tree, and returns whichever maximises the rack-aware bottleneck
    bandwidth (:func:`rack_bmin`) — so it never loses to the flat plan it
    extends.
    """

    name = "RackAwarePivotRepair"

    def _build(
        self,
        snapshot: BandwidthSnapshot,
        requestor: int,
        candidates: list[int],
        k: int,
    ) -> RepairPlan:
        if not isinstance(snapshot, RackSnapshot):
            raise PlanningError(
                "RackAwarePivotPlanner needs a RackSnapshot "
                "(use RackSnapshot.from_network)"
            )
        pivots = select_pivots(snapshot, candidates, k)
        local_parents, heads = self._local_subtrees(
            snapshot, requestor, pivots
        )
        arrangements: list[tuple[str, RepairTree]] = []
        if heads:
            star = dict(local_parents)
            for head in heads:
                star[head] = requestor
            arrangements.append(("star", RepairTree(requestor, star)))
            chain = dict(local_parents)
            previous = requestor
            for head in sorted(
                heads, key=lambda n: (-snapshot.theo(n), n)
            ):
                chain[head] = previous
                previous = head
            arrangements.append(("chain", RepairTree(requestor, chain)))
        else:
            arrangements.append(
                ("local", RepairTree(requestor, dict(local_parents)))
            )
        from repro.core.algorithm import build_pivot_tree

        arrangements.append(
            ("flat", build_pivot_tree(snapshot, requestor, candidates, k))
        )
        best_name, best_tree = max(
            arrangements, key=lambda item: rack_bmin(item[1], snapshot)
        )
        return RepairPlan(
            scheme=self.name,
            requestor=requestor,
            helpers=best_tree.helpers,
            tree=best_tree,
            bmin=rack_bmin(best_tree, snapshot),
            notes={"arrangement": best_name},
        )

    def _local_subtrees(
        self,
        snapshot: RackSnapshot,
        requestor: int,
        pivots: Sequence[int],
    ) -> tuple[dict[int, int], list[int]]:
        """Per-rack aggregation subtrees; returns (parents, remote heads)."""
        groups: dict[int, list[int]] = {}
        for pivot in pivots:
            groups.setdefault(snapshot.rack_of[pivot], []).append(pivot)
        parents: dict[int, int] = {}
        heads: list[int] = []
        for rack, members in groups.items():
            if rack == snapshot.rack_of[requestor]:
                # Local helpers aggregate under the requestor directly.
                parents.update(
                    insert_pivots(
                        snapshot,
                        requestor,
                        sorted(
                            members, key=lambda n: (-snapshot.theo(n), n)
                        ),
                    )
                )
                continue
            head = max(members, key=lambda n: (snapshot.theo(n), -n))
            rest = sorted(
                (n for n in members if n != head),
                key=lambda n: (-snapshot.theo(n), n),
            )
            parents.update(insert_pivots(snapshot, head, rest))
            heads.append(head)
        return parents, heads


def flat_plan_rack_bmin(
    planner: RepairPlanner,
    snapshot: RackSnapshot,
    requestor: int,
    candidates: Sequence[int],
    k: int,
) -> tuple[RepairPlan, float]:
    """Plan with a rack-oblivious planner, then score it on the rack model.

    Utility for the rack ablation: the flat planner sees only node links,
    so its B_min estimate ignores the oversubscribed core; this returns
    both the plan and its *true* rack-aware bottleneck.
    """
    plan = planner.plan(snapshot, requestor, candidates, k)
    return plan, rack_bmin(plan.tree, snapshot)
