"""Tests for the repair QoS governors."""

import math

import pytest

from repro.exceptions import LoadGenError
from repro.loadgen import (
    AdaptiveSLOGovernor,
    NoGovernor,
    StaticCapGovernor,
    make_governor,
)
from repro.units import mbps


class _StubForeground:
    """Engine stand-in answering recent_read_p99 from a script."""

    def __init__(self, p99):
        self.p99 = p99

    def recent_read_p99(self, now):
        return self.p99


class TestFactory:
    def test_names(self):
        assert make_governor("none").name == "none"
        assert make_governor("static").name == "static"
        assert make_governor("adaptive").name == "adaptive"

    def test_unknown_rejected(self):
        with pytest.raises(LoadGenError):
            make_governor("vibes")

    def test_kwargs_forwarded(self):
        governor = make_governor("static", cap=mbps(100))
        assert governor.cap == mbps(100)


class TestNoGovernor:
    def test_never_caps(self):
        governor = NoGovernor()
        assert governor.repair_rate_cap(0.0, _StubForeground(99.0)) is None
        assert math.isinf(governor.decision_interval)


class TestStaticCapGovernor:
    def test_fixed_cap(self):
        governor = StaticCapGovernor(cap=mbps(200))
        assert governor.repair_rate_cap(0.0, None) == mbps(200)
        assert governor.repair_rate_cap(5.0, _StubForeground(9.0)) == mbps(200)

    def test_positive_cap_required(self):
        with pytest.raises(LoadGenError):
            StaticCapGovernor(cap=0.0)


class TestAdaptiveSLOGovernor:
    def make(self, **kwargs):
        defaults = dict(
            slo_p99=0.1, reference_rate=mbps(1000), floor_rate=mbps(50),
            decrease=0.5, increase=2.0, relax_fraction=0.5,
        )
        defaults.update(kwargs)
        return AdaptiveSLOGovernor(**defaults)

    def test_uncapped_while_healthy(self):
        governor = self.make()
        assert governor.repair_rate_cap(0.0, _StubForeground(0.01)) is None

    def test_backs_off_when_slo_violated(self):
        governor = self.make()
        slow = _StubForeground(0.5)
        first = governor.repair_rate_cap(0.0, slow)
        assert first == mbps(500)  # reference * decrease
        second = governor.repair_rate_cap(1.0, slow)
        assert second == mbps(250)

    def test_never_below_floor(self):
        governor = self.make()
        slow = _StubForeground(1.0)
        for t in range(20):
            cap = governor.repair_rate_cap(float(t), slow)
        assert cap == mbps(50)

    def test_recovers_and_releases(self):
        governor = self.make()
        governor.repair_rate_cap(0.0, _StubForeground(0.5))  # cap 500
        fast = _StubForeground(0.01)
        assert governor.repair_rate_cap(1.0, fast) is None  # 500*2 >= ref

    def test_holds_cap_between_relax_and_slo(self):
        governor = self.make()
        governor.repair_rate_cap(0.0, _StubForeground(0.5))  # cap 500
        # p99 between relax_fraction*slo (0.05) and slo (0.1): hold.
        assert governor.repair_rate_cap(1.0, _StubForeground(0.07)) == mbps(
            500
        )

    def test_no_signal_relaxes_gently(self):
        governor = self.make()
        slow = _StubForeground(0.5)
        governor.repair_rate_cap(0.0, slow)
        governor.repair_rate_cap(1.0, slow)  # cap 250
        quiet = _StubForeground(math.nan)
        assert governor.repair_rate_cap(2.0, quiet) == mbps(500)
        assert governor.repair_rate_cap(3.0, quiet) is None

    def test_none_foreground_treated_as_no_signal(self):
        governor = self.make()
        assert governor.repair_rate_cap(0.0, None) is None

    def test_decisions_logged(self):
        governor = self.make()
        governor.repair_rate_cap(0.0, _StubForeground(0.5))
        governor.repair_rate_cap(1.0, _StubForeground(0.01))
        assert len(governor.decisions) == 2
        t, p99, cap = governor.decisions[0]
        assert (t, p99, cap) == (0.0, 0.5, mbps(500))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slo_p99": 0.0},
            {"floor_rate": mbps(2000)},
            {"decrease": 1.0},
            {"increase": 1.0},
            {"relax_fraction": 1.0},
            {"decision_interval": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(LoadGenError):
            self.make(**kwargs)
