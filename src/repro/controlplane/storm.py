"""The repair-storm scenario: rack outage → fleet repair under load.

One seeded, bit-deterministic scenario shared by the ``repro storm``
CLI command, the chaos smoke (scripts/chaos_smoke.py), the benchmark
snapshot (scripts/bench_snapshot.py) and the determinism tests:

1. a two-level rack topology (oversubscribed rack links) carries Zipf
   foreground traffic from several tenants;
2. at ``outage_at`` a whole rack loses power (correlated
   :meth:`~repro.faults.plan.FaultPlan.rack_outage`), followed by a gray
   wave degrading one survivor per remaining rack;
3. every crashed node that held chunks becomes a repair job on the
   :class:`~repro.controlplane.plane.ControlPlane`, with QoS classes
   rotating gold/silver/bronze;
4. the plane admits, sheds, degrades and drains the storm; the SLO
   burn-rate monitor on the foreground tenants supplies the
   backpressure signal.

Planning charges are pinned (``planning_seconds``) so two runs of one
seed — on either allocation engine — produce byte-identical traces,
journals and admission decision logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.controlplane.admission import AdmissionConfig
from repro.controlplane.backpressure import BackpressureConfig
from repro.controlplane.plane import (
    ControlPlane,
    DegradationPolicy,
    FleetResult,
)
from repro.core import PivotRepairPlanner
from repro.core.scheduler import SchedulerConfig
from repro.core.seeding import spawn_rng
from repro.ec import RSCode, place_stripes
from repro.exceptions import ClusterError
from repro.faults.network import FaultyNetwork
from repro.faults.plan import FaultPlan
from repro.faults.policy import RetryPolicy
from repro.loadgen import ForegroundEngine, LoadProfile, generate_requests
from repro.network.bandwidth import NodeBandwidth
from repro.network.hierarchical import RackNetwork
from repro.network.simulator import FluidSimulator
from repro.obs import (
    NULL_TRACER,
    FlightRecorder,
    SLOMonitor,
    SLOSpec,
    TimeSeriesDB,
)
from repro.repair.pipeline import ExecutionConfig
from repro.units import mib

__all__ = [
    "StormConfig",
    "StormReport",
    "pin_planning",
    "run_storm",
    "storm_fault_plan",
    "storm_network",
]

_QOS_ROTATION = ("gold", "silver", "bronze")


def pin_planning(planner, seconds: float):
    """Charge a fixed planning cost instead of measured wall time.

    Wall-clock planning durations advance the simulated clock and
    differ between runs of one seed; the storm pins them so the whole
    run is bit-reproducible (same rationale as ``repro explain``).
    """
    inner = planner.plan

    def plan(*args, **kwargs):
        result = inner(*args, **kwargs)
        result.planning_seconds = seconds
        result.extrapolated_seconds = None
        return result

    planner.plan = plan
    return planner


@dataclass(frozen=True)
class StormConfig:
    """Everything that parameterizes one storm run (all seeded)."""

    seed: int = 42
    racks: int = 3
    nodes_per_rack: int = 4
    #: Rack whose power fails at ``outage_at``.
    outage_rack: int = 0
    outage_at: float = 0.05
    #: Degrade one survivor per remaining rack (the gray wave)?
    gray_wave: bool = True
    gray_factor: float = 0.35
    gray_duration: float = 6.0
    stripes: int = 20
    n: int = 6
    k: int = 4
    chunk_mib: float = 24.0
    node_mbs: float = 25.0
    #: Heterogeneity step between consecutive nodes (fraction of base).
    node_spread: float = 0.04
    #: Rack uplink as a fraction of the rack's summed node capacity
    #: (< 1 = oversubscribed, the usual datacenter shape).
    rack_oversubscription: float = 0.6
    #: Foreground arrivals per second (0 disables foreground + SLOs).
    foreground_rate: float = 80.0
    foreground_duration: float = 50.0
    request_kib: int = 256
    tenants: int = 2
    slo_seconds: float = 0.06
    slo_budget: float = 0.05
    #: Burn-rate windows; storm-scale (short) so alerts fire and resolve
    #: within one scenario rather than on SRE dashboards' timescales.
    slo_short_window: float = 3.0
    slo_long_window: float = 8.0
    planning_seconds: float = 0.002
    sample_interval: float = 0.25
    engine: str | None = None
    #: Fleet admission gate; ``admission_control=False`` runs the
    #: uncontrolled baseline (everything admitted, never shed).
    admission_control: bool = True
    max_streams: int = 4
    max_jobs: int = 3
    aging_rate: float = 5.0
    breadth_watermark: float = 0.45
    resume_breadth: float = 0.30
    min_active_jobs: int = 1
    check_interval: float = 0.5
    degrade_after: int = 2
    retry_spec: str = "timeout=0.25,retries=4,backoff=0.1x2,jitter=0.5,maxbackoff=2"
    scheduler_threshold: float = 0.0
    max_time: float = 600.0


@dataclass
class StormReport:
    """What one storm run produced, ready for checks and JSON."""

    config: StormConfig
    fleet: FleetResult
    total_seconds: float
    #: (name, kind, t) per SLO transition, in emission order.
    alerts: list = field(default_factory=list)
    #: Summed seconds any latency SLO alert spent firing.
    breach_seconds: float = 0.0
    sim_stats: dict = field(default_factory=dict)
    foreground_summary: dict | None = None

    def as_dict(self) -> dict:
        return {
            "engine": self.config.engine,
            "seed": self.config.seed,
            "admission_control": self.config.admission_control,
            "total_seconds": self.total_seconds,
            "chunks_repaired": self.fleet.chunks_repaired,
            "chunks_failed": self.fleet.chunks_failed,
            "jobs": {
                job_id: {
                    "qos": self.fleet.qos.get(job_id, ""),
                    "repaired": outcome.chunks_repaired,
                    "failed": outcome.chunks_failed,
                    "completed": self.fleet.completed[job_id],
                }
                for job_id, outcome in self.fleet.jobs.items()
            },
            "decisions": self.fleet.decision_counts(),
            "alerts": [list(alert) for alert in self.alerts],
            "breach_seconds": self.breach_seconds,
            "sim": self.sim_stats,
        }


def storm_network(config: StormConfig) -> RackNetwork:
    """Heterogeneous racked topology; deterministic, no RNG needed."""
    base = config.node_mbs * 1e6
    node_count = config.racks * config.nodes_per_rack
    node_racks = [node // config.nodes_per_rack for node in range(node_count)]
    nodes = [
        NodeBandwidth.constant(
            base * (1.0 + config.node_spread * node),
            base * (1.0 + config.node_spread * ((node * 7) % node_count)),
        )
        for node in range(node_count)
    ]
    racks = []
    for rack in range(config.racks):
        members = [n for n, r in enumerate(node_racks) if r == rack]
        pooled = sum(
            base * (1.0 + config.node_spread * node) for node in members
        )
        cap = pooled * config.rack_oversubscription
        racks.append(NodeBandwidth.constant(cap, cap))
    return RackNetwork(node_racks, nodes, racks)


def storm_fault_plan(config: StormConfig, network: RackNetwork) -> FaultPlan:
    """Correlated rack loss plus the gray wave on surviving racks."""
    lost = network.nodes_in_rack(config.outage_rack)
    gray: list[int] = []
    if config.gray_wave:
        for rack in range(network.rack_count):
            if rack == config.outage_rack:
                continue
            # The first node of each surviving rack browns out: its
            # uplink serves repair reads, so this is a gray failure the
            # degradation policy must absorb, not a crash.
            gray.append(network.nodes_in_rack(rack)[0])
    return FaultPlan.rack_outage(
        lost, config.outage_at,
        gray_nodes=gray,
        gray_start=config.outage_at + 1.0,
        gray_duration=config.gray_duration,
        gray_factor=config.gray_factor,
        gray_direction="up",
    )


def _breach_seconds(alerts, end: float) -> float:
    """Total seconds latency alerts spent firing (overlaps summed)."""
    open_at: dict[str, float] = {}
    total = 0.0
    for alert in alerts:
        if not alert.name.startswith("latency-"):
            continue
        if alert.kind == "fire":
            open_at.setdefault(alert.name, alert.t)
        elif alert.kind == "resolve" and alert.name in open_at:
            total += alert.t - open_at.pop(alert.name)
    for t0 in open_at.values():
        total += end - t0
    return total


def run_storm(
    config: StormConfig | None = None,
    tracer=NULL_TRACER,
    journal=None,
) -> StormReport:
    """Run one seeded storm scenario end to end; see module docstring."""
    config = config or StormConfig()
    code = RSCode(config.n, config.k)
    network = storm_network(config)
    node_count = len(network)
    stripes = place_stripes(
        config.stripes, code, node_count,
        spawn_rng(config.seed, "storm", "placement"),
    )
    faults = storm_fault_plan(config, network)
    failed_nodes = [
        node
        for node in network.nodes_in_rack(config.outage_rack)
        if any(s.chunk_on_node(node) is not None for s in stripes)
    ]
    if not failed_nodes:
        raise ClusterError(
            "storm outage rack holds no chunks; widen placement"
        )
    wrapped = FaultyNetwork.wrap(network, faults)
    exec_config = ExecutionConfig(
        chunk_size=int(mib(config.chunk_mib)), engine=config.engine,
    )
    retry_policy = RetryPolicy.from_spec(config.retry_spec)

    tsdb = TimeSeriesDB()
    sampler = FlightRecorder(interval=config.sample_interval, tsdb=tsdb)
    tenant_names = tuple(f"tenant-{i}" for i in range(max(config.tenants, 1)))
    foreground = None
    specs = []
    if config.foreground_rate > 0:
        profile = LoadProfile(
            name="storm",
            arrival_rate=config.foreground_rate,
            duration=config.foreground_duration,
            read_fraction=0.9,
            request_size=config.request_kib * 1024,
            zipf_s=0.9,
            tenants=tenant_names,
        )
        requests = generate_requests(
            profile, stripes, node_count,
            seed=spawn_rng(config.seed, "storm", "foreground"),
        )
        foreground = ForegroundEngine(
            stripes, requests,
            pin_planning(PivotRepairPlanner(), config.planning_seconds),
            failed_nodes=set(failed_nodes), faults=faults, tsdb=tsdb,
            drop_dead_clients=True,
        )
        specs = [
            SLOSpec(
                name=f"latency-{tenant}", kind="latency", tenant=tenant,
                threshold=config.slo_seconds, budget=config.slo_budget,
                short_window=config.slo_short_window,
                long_window=config.slo_long_window,
            )
            for tenant in tenant_names
        ]
    monitor = SLOMonitor(tsdb, specs, tracer=tracer)
    sampler.add_listener(monitor.on_tick)

    sim = FluidSimulator(
        wrapped, start_time=0.0, tracer=tracer, sampler=sampler,
        engine=config.engine,
    )
    if config.admission_control:
        admission = AdmissionConfig(
            max_streams=config.max_streams,
            max_jobs=config.max_jobs,
            aging_rate=config.aging_rate,
        )
        backpressure = BackpressureConfig(
            breadth_watermark=config.breadth_watermark,
            resume_breadth=config.resume_breadth,
            min_active_jobs=config.min_active_jobs,
            check_interval=config.check_interval,
        )
        slo_for_plane = monitor if specs else None
        threshold = config.scheduler_threshold
    else:
        # Uncontrolled baseline: everything admits at once, nothing is
        # ever shed, and dispatch ignores Eq. 3 pacing (a deeply
        # negative threshold starts every plannable stripe immediately)
        # — what a fleet without a control plane does.
        admission = AdmissionConfig(
            max_streams=10**6, max_jobs=10**6, aging_rate=config.aging_rate,
        )
        backpressure = BackpressureConfig(
            breadth_watermark=1.0, resume_breadth=1.0,
            min_active_jobs=config.min_active_jobs,
            check_interval=config.check_interval,
        )
        slo_for_plane = None
        threshold = -1e30
    plane = ControlPlane(
        sim, wrapped,
        scheduler=SchedulerConfig(threshold=threshold),
        admission=admission,
        backpressure=backpressure,
        degradation=DegradationPolicy(escalate_after=config.degrade_after),
        faults=faults,
        tracer=tracer,
        foreground=foreground,
        slo_monitor=slo_for_plane,
        journal=journal,
    )
    planner = pin_planning(PivotRepairPlanner(), config.planning_seconds)
    for position, node in enumerate(failed_nodes):
        plane.add_job(
            f"node{node}", planner, stripes, node,
            qos=_QOS_ROTATION[position % len(_QOS_ROTATION)],
            config=exec_config, retry_policy=retry_policy,
        )
    fleet = plane.run(max_time=config.max_time)
    if foreground is not None:
        foreground.drain()
    end = sim.now
    if sampler.samples:
        end = max(end, sampler.samples[-1].t)
    monitor.evaluate(end)
    return StormReport(
        config=config,
        fleet=fleet,
        total_seconds=sim.now,
        alerts=[(a.name, a.kind, a.t) for a in monitor.alerts],
        breach_seconds=_breach_seconds(monitor.alerts, end),
        sim_stats=sim.stats.as_dict(),
        foreground_summary=(
            foreground.summary() if foreground is not None else None
        ),
    )
