"""Token/credit admission control for fleet-scale repair storms.

A correlated rack outage enqueues one repair *job* per lost node.  Running
them all at once collapses foreground SLOs — every job saturates its
bottleneck links and the max-min allocator happily splits the cluster
between them.  The admission gate bounds the blast radius with two token
pools: concurrent repair **streams** (in-flight pipelined tasks, fleet
wide) and in-flight repair **bytes** (remaining bytes the admitted tasks
still have to move).  Jobs queue until both pools have room.

Starvation freedom comes from **priority aging**: a job's effective
priority is its QoS base priority plus ``aging_rate`` points per
simulated second spent waiting, so a bronze job parked behind a stream
of fresh gold arrivals eventually outbids them — the wait is bounded by
``(gold.base - bronze.base) / aging_rate`` seconds (plus one admission
cycle), which tests/controlplane/test_admission.py pins down.

Every admit/shed/resume decision is appended to a deterministic decision
log; the storm determinism test diffs two runs' logs byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ClusterError

__all__ = [
    "QoSClass",
    "QOS_CLASSES",
    "AdmissionConfig",
    "AdmissionController",
]


@dataclass(frozen=True)
class QoSClass:
    """A tenant service class: the job's base admission priority."""

    name: str
    base_priority: float


#: Built-in service classes.  The spread between classes and the aging
#: rate jointly bound the worst-case queue wait (see module docstring).
QOS_CLASSES = {
    "gold": QoSClass("gold", 100.0),
    "silver": QoSClass("silver", 50.0),
    "bronze": QoSClass("bronze", 10.0),
}


@dataclass(frozen=True)
class AdmissionConfig:
    """Token pools and aging for the fleet admission gate.

    ``max_streams`` bounds concurrent repair pipelines fleet-wide (the
    knob production systems call "recovery streams"); ``max_inflight_bytes``
    bounds the repair bytes outstanding on the wire at once;
    ``max_jobs`` bounds concurrently *admitted* jobs (each job may run
    several streams).  ``aging_rate`` is priority points per simulated
    second a job waits un-admitted.
    """

    max_streams: int = 8
    max_inflight_bytes: float = math.inf
    max_jobs: int = 4
    aging_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.max_streams < 1:
            raise ClusterError("max_streams must be >= 1")
        if self.max_inflight_bytes <= 0:
            raise ClusterError("max_inflight_bytes must be positive")
        if self.max_jobs < 1:
            raise ClusterError("max_jobs must be >= 1")
        if self.aging_rate < 0:
            raise ClusterError("aging_rate cannot be negative")


class AdmissionController:
    """Decide which jobs hold admission tokens, with priority aging.

    The controller is pure policy over the job list the plane hands it —
    it holds no simulator references, which keeps it trivially
    deterministic and property-testable (the starvation-freedom test
    drives it directly with synthetic jobs).
    """

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        #: Deterministic decision log: dicts with ``t``/``action``/``job``
        #: (+ context), appended in decision order.  The storm
        #: determinism test compares two runs' logs verbatim.
        self.decisions: list[dict] = []

    def effective_priority(self, job, now: float) -> float:
        """Base QoS priority plus aging credit for time spent waiting."""
        waited = max(0.0, now - job.enqueued_at)
        return job.qos.base_priority + self.config.aging_rate * waited

    def record(self, t: float, action: str, job, **detail) -> None:
        entry = {"t": t, "action": action, "job": job.job_id}
        entry.update(sorted(detail.items()))
        self.decisions.append(entry)

    # ------------------------------------------------------------------
    # Selection policy
    # ------------------------------------------------------------------
    def pick_admit(self, queued, now: float):
        """Highest effective priority wins; enqueue order breaks ties."""
        if not queued:
            return None
        return max(
            queued,
            key=lambda job: (self.effective_priority(job, now), -job.index),
        )

    def pick_shed(self, admitted, now: float):
        """Lowest effective priority sheds; youngest sheds on ties."""
        if not admitted:
            return None
        return min(
            admitted,
            key=lambda job: (self.effective_priority(job, now), -job.index),
        )

    def pick_resume(self, paused, now: float):
        """Resume order mirrors admission order."""
        return self.pick_admit(paused, now)

    # ------------------------------------------------------------------
    # Token accounting
    # ------------------------------------------------------------------
    def stream_tokens_free(self, active_streams: int) -> int:
        return max(0, self.config.max_streams - active_streams)

    def bytes_token_free(self, inflight_bytes: float) -> float:
        return max(0.0, self.config.max_inflight_bytes - inflight_bytes)

    def may_admit_job(self, admitted_count: int) -> bool:
        return admitted_count < self.config.max_jobs

    def may_start_stream(
        self,
        active_streams: int,
        inflight_bytes: float,
        new_bytes: float,
    ) -> bool:
        """May one more repair stream of ``new_bytes`` start right now?

        The byte check admits a stream that *starts* within budget even
        if it overshoots (otherwise a budget smaller than one chunk
        would deadlock the fleet); the stream pool is the hard bound on
        concurrency.
        """
        if self.stream_tokens_free(active_streams) < 1:
            return False
        if not math.isfinite(self.config.max_inflight_bytes):
            return True
        return inflight_bytes + new_bytes <= self.config.max_inflight_bytes \
            or inflight_bytes == 0.0
