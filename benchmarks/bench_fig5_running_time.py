"""E-F5d-f: algorithm running time (Figure 5(d)-(f)).

Paper shape: PivotRepair's planner runs in microseconds at every (n, k)
(4.81-5.30 us at (14, 10), O(n log n)); RP's is also tiny; PPT's grows
exponentially with k, reaching 1e5-1e10 seconds (projected) at (14, 10).

Deviation note: the paper measures RP's planner at ~10 ms for (14, 10) and
slower than PivotRepair's for k >= 6; our RP planner is a trivial chain
construction and stays sub-10us everywhere, so we do not reproduce the
RP-vs-PivotRepair running-time crossover — only the claims that matter
(both are negligible; PPT is not).
"""

import pytest

from conftest import PAPER_CODES, record
from fig5_common import SCHEMES, format_grid, make_planner, stripe_nodes_at
from repro.core.bandwidth_view import BandwidthSnapshot


@pytest.mark.benchmark(group="fig5-running")
def test_fig5_running_time_table(benchmark, fig5_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = format_grid(
        fig5_results,
        "planning_seconds",
        "Figure 5(d-f): algorithm running time "
        "(wall clock; PPT extrapolated when capped)",
    )
    record("fig5_running_time", lines)

    for name, by_code in fig5_results.items():
        for code, by_scheme in by_code.items():
            # PivotRepair stays in the microsecond range (O(n log n)).
            assert by_scheme["PivotRepair"].planning_seconds < 1e-3, (
                name, code,
            )
            assert by_scheme["RP"].planning_seconds < 1e-3, (name, code)
        # PPT grows by orders of magnitude from k=4 to k=10.
        ppt_small = by_code[(6, 4)]["PPT"].planning_seconds
        ppt_large = by_code[(14, 10)]["PPT"].planning_seconds
        assert ppt_large > 1e3 * ppt_small, name
        assert ppt_large > 100.0, name  # paper: 1e5..1e10 s projected
        benchmark.extra_info[name] = {
            str(code): {
                scheme: by_scheme[scheme].planning_seconds
                for scheme in SCHEMES
            }
            for code, by_scheme in by_code.items()
        }


@pytest.mark.benchmark(group="fig5-running-micro")
@pytest.mark.parametrize("n,k", PAPER_CODES, ids=lambda v: str(v))
@pytest.mark.parametrize("scheme", ["RP", "PivotRepair"])
def test_planner_microbenchmark(benchmark, workload_traces, scheme, n, k):
    """Real microbenchmark of the fast planners (RP, PivotRepair)."""
    trace = workload_traces["TPC-DS"]
    network_snapshot = BandwidthSnapshot(
        up={
            i: float(v)
            for i, v in enumerate(trace.available_up()[:, 100])
        },
        down={
            i: float(v)
            for i, v in enumerate(trace.available_down()[:, 100])
        },
    )
    requestor, survivors = stripe_nodes_at(trace, 100.0, n, seed=5)
    planner = make_planner(scheme)
    plan = benchmark(
        planner.plan, network_snapshot, requestor, survivors, k
    )
    assert len(plan.helpers) == k
