"""Monte-Carlo cluster-lifetime driver: durability as a metric.

Repeats the event-driven lifetime simulation over many independent
seeded runs and turns data-loss counts into the reliability numbers
operators actually budget with:

* **MTTDL** — mean time to data loss, estimated by renewal-reward as
  total simulated stripe-time divided by total loss events;
* **durability nines** — ``-log10`` of the per-stripe-year loss
  probability (eleven nines ≈ S3's marketing number);
* **95% confidence intervals** on expected loss events per run, so a
  "PivotRepair beats conventional" claim comes with error bars.

The comparison is *paired*: each run generates one outage timeline
(placement + every unit's failure schedule) from scheme-independent RNG
streams, and every scheme replays that identical history — differing
only in how fast its repairs close exposure windows.  Scheme-specific
randomness (repair-duration sampling) comes from separate named streams,
so adding a scheme or reordering the loop never perturbs another
scheme's results.  Everything derives from one root seed via
:func:`repro.core.seeding.spawn_rng` paths, making the whole report —
and its SHA-256 digest — bit-reproducible.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.seeding import spawn_rng
from repro.ec.reed_solomon import RSCode
from repro.ec.stripe import place_stripes
from repro.exceptions import LifetimeError
from repro.lifetime.durations import (
    SCHEME_KEYS,
    CalibratedDurations,
    DurationModel,
)
from repro.lifetime.failure import DAY, YEAR, ExponentialFailures, FailureProcess
from repro.lifetime.simulate import POLICIES, simulate_lifetime
from repro.lifetime.units import ClusterLayout
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "LifetimeConfig",
    "LifetimeReport",
    "SchemeSummary",
    "default_processes",
    "run_lifetime",
]

HOUR = 3600.0


@dataclass(frozen=True)
class LifetimeConfig:
    """Parameters of one Monte-Carlo lifetime study.

    Failure rates are *accelerated* relative to real hardware so that a
    10-year × 100-run study observes enough loss events to compare
    schemes; what matters for the comparison is the ratio of exposure
    windows to inter-failure times, not absolute calendar realism.
    Setting an ``*_mttf_days`` to 0 disables that failure layer.
    """

    years: float = 10.0
    runs: int = 100
    seed: int = 42
    schemes: tuple[str, ...] = ("pivot", "conventional")
    # Topology and placement.
    machines: int = 16
    racks: int = 4
    disks_per_machine: int = 2
    stripes: int = 64
    n: int = 6
    k: int = 4
    # Failure layers (days / hours; 0 MTTF disables a layer).
    disk_mttf_days: float = 120.0
    disk_replace_hours: float = 0.0
    machine_mttf_days: float = 60.0
    machine_mttr_hours: float = 1.0
    rack_mttf_days: float = 180.0
    rack_mttr_hours: float = 4.0
    # Repair plane.
    repair_streams: int = 2
    policy: str = "eager"
    lazy_threshold: int = 2
    #: Real data represented by one simulated chunk: repairing it costs
    #: this many GiB of sequential 64 MiB single-chunk repairs.
    data_per_chunk_gib: float = 64.0
    # Calibration of the congestion-aware duration model.
    workload: str = "TPC-DS"
    calibration_instants: int = 8

    def __post_init__(self) -> None:
        if self.years <= 0:
            raise LifetimeError("years must be positive")
        if self.runs < 1:
            raise LifetimeError("need at least one run")
        if not self.schemes:
            raise LifetimeError("need at least one scheme")
        for scheme in self.schemes:
            if scheme not in SCHEME_KEYS:
                raise LifetimeError(
                    f"unknown scheme {scheme!r}; expected from {SCHEME_KEYS}"
                )
        if len(set(self.schemes)) != len(self.schemes):
            raise LifetimeError("schemes must be unique")
        if self.n <= self.k or self.k < 1:
            raise LifetimeError(f"need n > k >= 1, got ({self.n}, {self.k})")
        if self.machines < self.n:
            raise LifetimeError(
                f"an (n={self.n}) stripe needs at least {self.n} machines"
            )
        if self.stripes < 1:
            raise LifetimeError("need at least one stripe")
        if self.policy not in POLICIES:
            raise LifetimeError(f"unknown policy {self.policy!r}")
        for name in (
            "disk_mttf_days", "disk_replace_hours", "machine_mttf_days",
            "machine_mttr_hours", "rack_mttf_days", "rack_mttr_hours",
        ):
            if getattr(self, name) < 0:
                raise LifetimeError(f"{name} cannot be negative")
        if self.data_per_chunk_gib <= 0:
            raise LifetimeError("data_per_chunk_gib must be positive")

    @property
    def horizon(self) -> float:
        return self.years * YEAR

    @property
    def layout(self) -> ClusterLayout:
        return ClusterLayout(
            machines=self.machines,
            racks=self.racks,
            disks_per_machine=self.disks_per_machine,
        )

    @property
    def duration_scale(self) -> float:
        """Single-chunk repairs represented by one simulated repair."""
        return self.data_per_chunk_gib * 1024.0 / 64.0

    def to_dict(self) -> dict:
        return {
            "years": self.years, "runs": self.runs, "seed": self.seed,
            "schemes": list(self.schemes), "machines": self.machines,
            "racks": self.racks, "disks_per_machine": self.disks_per_machine,
            "stripes": self.stripes, "n": self.n, "k": self.k,
            "disk_mttf_days": self.disk_mttf_days,
            "disk_replace_hours": self.disk_replace_hours,
            "machine_mttf_days": self.machine_mttf_days,
            "machine_mttr_hours": self.machine_mttr_hours,
            "rack_mttf_days": self.rack_mttf_days,
            "rack_mttr_hours": self.rack_mttr_hours,
            "repair_streams": self.repair_streams, "policy": self.policy,
            "lazy_threshold": self.lazy_threshold,
            "data_per_chunk_gib": self.data_per_chunk_gib,
            "workload": self.workload,
            "calibration_instants": self.calibration_instants,
        }


def default_processes(config: LifetimeConfig) -> dict[str, FailureProcess]:
    """The three-layer failure model a config describes.

    Disks fail *permanently* (the data on them is gone) and return after
    the replacement lead time; machines and racks suffer *transient*
    outages — data survives, but chunks behind them are unreachable,
    repairs reading from them stall, and exposure windows stretch.
    """
    processes: dict[str, FailureProcess] = {}
    if config.disk_mttf_days > 0:
        processes["disk"] = ExponentialFailures(
            mttf=config.disk_mttf_days * DAY,
            mttr=config.disk_replace_hours * HOUR,
            permanent=True,
        )
    if config.machine_mttf_days > 0:
        processes["machine"] = ExponentialFailures(
            mttf=config.machine_mttf_days * DAY,
            mttr=config.machine_mttr_hours * HOUR,
        )
    if config.rack_mttf_days > 0:
        processes["rack"] = ExponentialFailures(
            mttf=config.rack_mttf_days * DAY,
            mttr=config.rack_mttr_hours * HOUR,
        )
    if not processes:
        raise LifetimeError("every failure layer is disabled")
    return processes


@dataclass
class SchemeSummary:
    """Aggregated durability of one scheme over all runs."""

    scheme: str
    runs: list[dict] = field(default_factory=list)

    @property
    def total_losses(self) -> int:
        return sum(r["data_loss_events"] for r in self.runs)

    @property
    def mean_losses(self) -> float:
        return self.total_losses / len(self.runs)

    @property
    def loss_ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% CI on expected losses per run."""
        counts = [r["data_loss_events"] for r in self.runs]
        count = len(counts)
        mean = sum(counts) / count
        if count < 2:
            return (mean, mean)
        var = sum((c - mean) ** 2 for c in counts) / (count - 1)
        half = 1.96 * math.sqrt(var / count)
        return (max(0.0, mean - half), mean + half)

    def mttdl_years(self, years: float) -> float:
        """Cluster MTTDL by renewal-reward; inf when no losses observed."""
        if self.total_losses == 0:
            return math.inf
        return len(self.runs) * years / self.total_losses

    def durability_nines(self, years: float, stripes: int) -> float:
        """-log10 of the per-stripe-year loss rate; inf when loss-free."""
        rate = self.total_losses / (len(self.runs) * years * stripes)
        if rate <= 0:
            return math.inf
        return -math.log10(rate)

    def summary(self, years: float, stripes: int) -> dict:
        low, high = self.loss_ci95
        nines = self.durability_nines(years, stripes)
        mttdl = self.mttdl_years(years)
        return {
            "scheme": self.scheme,
            "total_data_loss_events": self.total_losses,
            "mean_losses_per_run": self.mean_losses,
            "loss_ci95": [low, high],
            "mttdl_years": None if math.isinf(mttdl) else mttdl,
            "durability_nines": None if math.isinf(nines) else nines,
            "repairs_completed": sum(
                r["repairs_completed"] for r in self.runs
            ),
            "repairs_aborted": sum(r["repairs_aborted"] for r in self.runs),
            "mean_repair_hours": self._mean_repair_hours(),
            "unavailable_events": sum(
                r["unavailable_events"] for r in self.runs
            ),
            "unavailable_hours": sum(
                r["unavailable_seconds"] for r in self.runs
            ) / HOUR,
        }

    def _mean_repair_hours(self) -> float:
        completed = sum(r["repairs_completed"] for r in self.runs)
        if not completed:
            return 0.0
        return sum(r["repair_seconds"] for r in self.runs) / completed / HOUR


@dataclass
class LifetimeReport:
    """Everything one Monte-Carlo lifetime study produced."""

    config: LifetimeConfig
    schemes: dict[str, SchemeSummary]
    duration_means: dict[str, float]
    digest: str

    def summary(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "digest": self.digest,
            "duration_mean_hours": {
                scheme: seconds / HOUR
                for scheme, seconds in sorted(self.duration_means.items())
            },
            "schemes": {
                scheme: summary.summary(self.config.years, self.config.stripes)
                for scheme, summary in sorted(self.schemes.items())
            },
        }

    def write_jsonl(self, path: Path | str) -> None:
        """Artifact: a summary header line, then one line per run."""
        path = Path(path)
        lines = [json.dumps({"kind": "summary", **self.summary()})]
        for scheme, summary in sorted(self.schemes.items()):
            for run_index, run in enumerate(summary.runs):
                lines.append(
                    json.dumps({
                        "kind": "run", "scheme": scheme, "run": run_index,
                        **run,
                    })
                )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _run_record(stats) -> dict:
    """The per-run fields that feed artifacts and the digest."""
    return {
        "data_loss_events": stats.data_loss_events,
        "loss_times": [round(t, 6) for t in stats.loss_times],
        "chunk_failures": stats.chunk_failures,
        "repairs_completed": stats.repairs_completed,
        "repairs_aborted": stats.repairs_aborted,
        "repair_seconds": round(stats.repair_seconds, 6),
        "unavailable_events": stats.unavailable_events,
        "unavailable_seconds": round(stats.unavailable_seconds, 6),
    }


def run_lifetime(
    config: LifetimeConfig,
    durations: DurationModel | None = None,
    processes: dict[str, FailureProcess] | None = None,
    registry=None,
    tsdb=None,
    tracer=NULL_TRACER,
    progress=None,
) -> LifetimeReport:
    """Run the full Monte-Carlo study a config describes.

    ``durations`` defaults to :meth:`CalibratedDurations.calibrate` on
    the config's workload (the congestion-aware model); pass an analytic
    model for Markov golden tests.  ``processes`` overrides the failure
    layers.  ``registry`` (:class:`~repro.obs.metrics.MetricsRegistry`)
    and ``tsdb`` (:class:`~repro.obs.timeseries.TimeSeriesDB`) receive
    durability metrics when provided; ``progress`` is an optional
    ``callable(run_index, runs)`` for CLI feedback.
    """
    if durations is None:
        durations = CalibratedDurations.calibrate(
            workload=config.workload,
            code=(config.n, config.k),
            schemes=config.schemes,
            instants=config.calibration_instants,
            node_count=config.machines,
            scale=config.duration_scale,
        )
    if processes is None:
        processes = default_processes(config)
    layout = config.layout
    code = RSCode(config.n, config.k)
    horizon = config.horizon
    summaries = {scheme: SchemeSummary(scheme) for scheme in config.schemes}

    for run_index in range(config.runs):
        if progress is not None:
            progress(run_index, config.runs)
        # One timeline per run, shared by every scheme (paired design).
        placement_rng = spawn_rng(config.seed, "lifetime", run_index, "placement")
        stripes = place_stripes(
            config.stripes, code, config.machines, placement_rng
        )
        outages = {}
        for kind, process in sorted(processes.items()):
            for unit in layout.units(kind):
                schedule = process.schedule(
                    spawn_rng(
                        config.seed, "lifetime", run_index, "failures",
                        str(unit),
                    ),
                    horizon,
                )
                if schedule:
                    outages[unit] = schedule
        for scheme in config.schemes:
            stats = simulate_lifetime(
                layout, stripes, outages, scheme, durations,
                spawn_rng(
                    config.seed, "lifetime", run_index, "repairs", scheme
                ),
                horizon,
                repair_streams=config.repair_streams,
                policy=config.policy,
                lazy_threshold=config.lazy_threshold,
                tracer=tracer,
            )
            record = _run_record(stats)
            summaries[scheme].runs.append(record)
            if tracer.enabled:
                tracer.instant(
                    "lifetime.run", float(run_index), track="lifetime",
                    scheme=scheme, losses=stats.data_loss_events,
                    repairs=stats.repairs_completed,
                )
            if tsdb is not None:
                for loss_time in stats.loss_times:
                    tsdb.inc(
                        "lifetime_losses", loss_time,
                        scheme=scheme, run=str(run_index),
                    )

    digest_payload = {
        "config": config.to_dict(),
        "runs": {
            scheme: summary.runs
            for scheme, summary in sorted(summaries.items())
        },
    }
    digest = hashlib.sha256(
        json.dumps(digest_payload, sort_keys=True).encode("utf-8")
    ).hexdigest()

    if registry is not None:
        for scheme, summary in sorted(summaries.items()):
            registry.counter(
                "lifetime_data_loss_events_total", scheme=scheme
            ).inc(summary.total_losses)
            registry.counter(
                "lifetime_repairs_completed_total", scheme=scheme
            ).inc(sum(r["repairs_completed"] for r in summary.runs))
            mttdl = summary.mttdl_years(config.years)
            if not math.isinf(mttdl):
                registry.gauge(
                    "lifetime_mttdl_years", scheme=scheme
                ).set(mttdl)
            nines = summary.durability_nines(config.years, config.stripes)
            if not math.isinf(nines):
                registry.gauge(
                    "lifetime_durability_nines", scheme=scheme
                ).set(nines)

    return LifetimeReport(
        config=config,
        schemes=summaries,
        duration_means={
            scheme: durations.mean(scheme) for scheme in config.schemes
        },
        digest=digest,
    )
