"""Tests for the rack / machine / disk unit hierarchy."""

import pytest

from repro.exceptions import LifetimeError
from repro.lifetime.units import ClusterLayout, UnitRef


class TestUnitRef:
    def test_str(self):
        assert str(UnitRef("disk", 12)) == "disk:12"

    def test_rejects_unknown_kind(self):
        with pytest.raises(LifetimeError):
            UnitRef("chassis", 0)

    def test_rejects_negative_index(self):
        with pytest.raises(LifetimeError):
            UnitRef("disk", -1)

    def test_orderable(self):
        assert UnitRef("disk", 1) < UnitRef("disk", 2)
        assert UnitRef("disk", 1) < UnitRef("machine", 0)


class TestClusterLayout:
    def test_containment_round_trips(self):
        layout = ClusterLayout(machines=8, racks=3, disks_per_machine=2)
        assert layout.disks == 16
        for machine in range(layout.machines):
            rack = layout.rack_of(machine)
            assert machine in layout.machines_in_rack(rack)
            for disk in layout.disks_of_machine(machine):
                assert layout.machine_of_disk(disk) == machine

    def test_racks_partition_machines(self):
        layout = ClusterLayout(machines=10, racks=4)
        seen = sorted(
            machine
            for rack in range(layout.racks)
            for machine in layout.machines_in_rack(rack)
        )
        assert seen == list(range(10))

    def test_disk_for_chunk_deterministic_and_local(self):
        layout = ClusterLayout(machines=6, racks=2, disks_per_machine=4)
        disk = layout.disk_for_chunk(17, 3, machine=5)
        assert disk == layout.disk_for_chunk(17, 3, machine=5)
        assert layout.machine_of_disk(disk) == 5

    def test_disk_for_chunk_spreads_over_disks(self):
        layout = ClusterLayout(machines=1, racks=1, disks_per_machine=4)
        used = {
            layout.disk_for_chunk(stripe, chunk, machine=0)
            for stripe in range(32)
            for chunk in range(6)
        }
        assert used == set(range(4))

    def test_units_enumeration(self):
        layout = ClusterLayout(machines=4, racks=2, disks_per_machine=3)
        assert len(layout.units("rack")) == 2
        assert len(layout.units("machine")) == 4
        assert len(layout.units("disk")) == 12
        with pytest.raises(LifetimeError):
            layout.units("chassis")

    def test_rejects_more_racks_than_machines(self):
        with pytest.raises(LifetimeError):
            ClusterLayout(machines=2, racks=3)
