"""Tests for systematic Reed-Solomon encode/decode/repair."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.reed_solomon import RSCode
from repro.exceptions import CodingError, InsufficientChunksError

PAPER_PARAMS = [(6, 4), (9, 6), (12, 8), (14, 10)]


def make_stripe(code, size=64, seed=0):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(code.k)]
    return data, code.encode(data)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(CodingError):
            RSCode(4, 4)
        with pytest.raises(CodingError):
            RSCode(3, 0)
        with pytest.raises(CodingError):
            RSCode(300, 4)

    def test_systematic_prefix_is_identity(self):
        code = RSCode(6, 4)
        np.testing.assert_array_equal(
            code.generator[:4], np.eye(4, dtype=np.uint8)
        )

    def test_equality_and_hash(self):
        assert RSCode(6, 4) == RSCode(6, 4)
        assert RSCode(6, 4) != RSCode(9, 6)
        assert hash(RSCode(6, 4)) == hash(RSCode(6, 4))

    def test_parity_count(self):
        assert RSCode(14, 10).parity_count == 4

    def test_repr(self):
        assert repr(RSCode(6, 4)) == "RSCode(n=6, k=4, GF(2^8))"


class TestEncode:
    def test_systematic_data_preserved(self):
        code = RSCode(6, 4)
        data, stripe = make_stripe(code)
        for original, coded in zip(data, stripe[:4]):
            np.testing.assert_array_equal(original, coded)

    def test_encode_wrong_count_raises(self):
        code = RSCode(6, 4)
        with pytest.raises(CodingError):
            code.encode([np.zeros(8, dtype=np.uint8)] * 3)

    def test_encode_mismatched_sizes_raises(self):
        code = RSCode(6, 4)
        chunks = [np.zeros(8, dtype=np.uint8)] * 3 + [np.zeros(9, dtype=np.uint8)]
        with pytest.raises(CodingError):
            code.encode(chunks)

    def test_zero_data_gives_zero_parity(self):
        code = RSCode(9, 6)
        stripe = code.encode([np.zeros(16, dtype=np.uint8)] * 6)
        for chunk in stripe:
            assert not chunk.any()


class TestDecode:
    @pytest.mark.parametrize("n,k", PAPER_PARAMS)
    def test_any_k_chunks_decode(self, n, k):
        code = RSCode(n, k)
        data, stripe = make_stripe(code, seed=n * 100 + k)
        rng = np.random.default_rng(1)
        for _ in range(5):
            chosen = rng.choice(n, size=k, replace=False)
            available = {int(i): stripe[int(i)] for i in chosen}
            decoded = code.decode(available)
            for original, rebuilt in zip(data, decoded):
                np.testing.assert_array_equal(original, rebuilt)

    def test_too_few_chunks_raises(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        with pytest.raises(InsufficientChunksError):
            code.decode({0: stripe[0], 1: stripe[1]})

    def test_out_of_range_index_raises(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code)
        available = {0: stripe[0], 1: stripe[1], 2: stripe[2], 9: stripe[3]}
        with pytest.raises(CodingError):
            code.decode(available)


class TestRepair:
    @pytest.mark.parametrize("n,k", PAPER_PARAMS)
    def test_repair_every_chunk(self, n, k):
        code = RSCode(n, k)
        _, stripe = make_stripe(code, seed=13)
        for lost in range(n):
            helpers = [i for i in range(n) if i != lost][:k]
            rebuilt = code.repair_chunk(
                lost, {i: stripe[i] for i in helpers}
            )
            np.testing.assert_array_equal(rebuilt, stripe[lost])

    def test_repair_with_parity_helpers(self):
        code = RSCode(6, 4)
        _, stripe = make_stripe(code, seed=2)
        helpers = [1, 3, 4, 5]  # includes both parity chunks
        rebuilt = code.repair_chunk(0, {i: stripe[i] for i in helpers})
        np.testing.assert_array_equal(rebuilt, stripe[0])

    def test_repair_coefficients_linearity(self):
        """XOR of coefficient-scaled helper chunks equals the lost chunk.

        This is exactly the aggregation a pipelined repair tree performs
        (Section II-B properties 1 and 2).
        """
        from repro.ec import galois

        code = RSCode(9, 6)
        _, stripe = make_stripe(code, seed=5)
        lost = 2
        helpers = [0, 1, 3, 4, 6, 8]
        coeffs = code.repair_coefficients(lost, helpers)
        acc = np.zeros_like(stripe[0])
        for index, coeff in coeffs.items():
            acc ^= galois.gf_mul_slice(coeff, stripe[index])
        np.testing.assert_array_equal(acc, stripe[lost])

    def test_repair_coefficients_order_independent(self):
        code = RSCode(6, 4)
        coeffs_a = code.repair_coefficients(0, [1, 2, 3, 4])
        coeffs_b = code.repair_coefficients(0, [4, 3, 2, 1])
        assert coeffs_a == coeffs_b

    def test_wrong_helper_count_raises(self):
        code = RSCode(6, 4)
        with pytest.raises(CodingError):
            code.repair_coefficients(0, [1, 2, 3])

    def test_duplicate_helpers_raise(self):
        code = RSCode(6, 4)
        with pytest.raises(CodingError):
            code.repair_coefficients(0, [1, 1, 2, 3])

    def test_lost_chunk_as_helper_raises(self):
        code = RSCode(6, 4)
        with pytest.raises(CodingError):
            code.repair_coefficients(0, [0, 1, 2, 3])


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(PAPER_PARAMS),
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_encode_decode_round_trip(self, params, size, seed):
        n, k = params
        code = RSCode(n, k)
        rng = np.random.default_rng(seed)
        data = [
            rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(k)
        ]
        stripe = code.encode(data)
        chosen = rng.choice(n, size=k, replace=False)
        decoded = code.decode({int(i): stripe[int(i)] for i in chosen})
        for original, rebuilt in zip(data, decoded):
            np.testing.assert_array_equal(original, rebuilt)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(PAPER_PARAMS),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_repair_matches_original(self, params, seed):
        n, k = params
        code = RSCode(n, k)
        rng = np.random.default_rng(seed)
        data = [
            rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(k)
        ]
        stripe = code.encode(data)
        lost = int(rng.integers(0, n))
        survivors = [i for i in range(n) if i != lost]
        helpers = rng.choice(survivors, size=k, replace=False)
        rebuilt = code.repair_chunk(
            lost, {int(i): stripe[int(i)] for i in helpers}
        )
        np.testing.assert_array_equal(rebuilt, stripe[lost])
