"""SLO burn-rate monitor tests: burn math, hysteresis, hooks, scenarios."""

import numpy as np
import pytest

from repro.core import PivotRepairPlanner
from repro.ec import RSCode, place_stripes
from repro.loadgen import (
    ForegroundEngine,
    LoadProfile,
    generate_requests,
    make_governor,
)
from repro.network.topology import StarNetwork
from repro.obs import (
    FlightRecorder,
    SLOMonitor,
    SLOSpec,
    TimeSeriesDB,
    Tracer,
)
from repro.obs.slo import SLOError
from repro.repair import ExecutionConfig, repair_full_node


def latency_spec(**overrides):
    spec = {
        "name": "lat", "kind": "latency", "tenant": "t0",
        "threshold": 0.1, "budget": 0.1,
        "short_window": 2.0, "long_window": 6.0, "max_burn": 1.0,
    }
    spec.update(overrides)
    return SLOSpec(**spec)


def feed_latency(db, points, tenant="t0"):
    for t, value in points:
        db.record("fg_read_latency", t, value, tenant=tenant)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(SLOError):
            SLOSpec(name="x", kind="availability")

    def test_bad_windows(self):
        with pytest.raises(SLOError):
            latency_spec(short_window=10.0, long_window=2.0)

    def test_default_series_per_kind(self):
        assert latency_spec().source == "fg_read_latency"
        assert (
            SLOSpec(name="d", kind="repair_deadline").source
            == "repair_progress"
        )
        assert latency_spec(series="custom").source == "custom"

    def test_duplicate_names_rejected(self):
        with pytest.raises(SLOError):
            SLOMonitor(TimeSeriesDB(), [latency_spec(), latency_spec()])


class TestBurnRates:
    def test_no_data_is_not_a_breach(self):
        monitor = SLOMonitor(TimeSeriesDB(), [latency_spec()])
        [status] = monitor.evaluate(10.0)
        assert status.no_data
        assert not status.firing
        assert status.burn == 0.0

    def test_latency_burn_is_bad_fraction_over_budget(self):
        db = TimeSeriesDB()
        # 50% of points over the 0.1s threshold; budget 0.1 -> burn 5.
        feed_latency(db, [(9.0, 0.2), (9.2, 0.01), (9.4, 0.3), (9.6, 0.02)])
        monitor = SLOMonitor(db, [latency_spec()])
        [status] = monitor.evaluate(10.0)
        assert status.burn_short == pytest.approx(5.0)
        assert status.firing

    def test_latency_burn_is_per_tenant(self):
        db = TimeSeriesDB()
        feed_latency(db, [(9.0, 5.0)], tenant="noisy")
        feed_latency(db, [(9.0, 0.01)], tenant="t0")
        monitor = SLOMonitor(db, [latency_spec()])
        [status] = monitor.evaluate(10.0)
        assert not status.firing, "another tenant's latency must not count"

    def test_fire_needs_both_windows_resolve_needs_both(self):
        db = TimeSeriesDB()
        spec = latency_spec()
        monitor = SLOMonitor(db, [spec])
        # Good history across the long window, one bad spike inside the
        # short window: short burns, long absorbs it -> no alert.
        feed_latency(
            db,
            [(t, 0.01)
             for t in (4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.5, 9.0)],
        )
        feed_latency(db, [(9.5, 0.9)])
        [status] = monitor.evaluate(10.0)
        assert status.burn_short > spec.max_burn
        assert status.burn_long <= spec.max_burn
        assert not status.firing
        # Sustained badness pushes both windows over: fires.
        feed_latency(db, [(t, 0.9) for t in (10.2, 10.5, 11.0, 11.5, 12.0)])
        [status] = monitor.evaluate(12.0)
        assert status.firing
        assert monitor.firing() == ["lat"]
        # Hysteresis: recent points recover but the long window still
        # burns -> the alert stays lit.
        feed_latency(db, [(13.0, 0.01), (13.5, 0.01), (14.0, 0.01)])
        [status] = monitor.evaluate(14.0)
        assert status.burn_long > spec.max_burn
        assert status.firing
        # Far later both windows are clean: resolves.
        feed_latency(db, [(29.0, 0.01), (29.5, 0.01)])
        [status] = monitor.evaluate(30.0)
        assert not status.firing
        kinds = [alert.kind for alert in monitor.alerts]
        assert kinds == ["fire", "resolve"]

    def test_repair_deadline_burn(self):
        db = TimeSeriesDB()
        spec = SLOSpec(
            name="deadline", kind="repair_deadline", deadline=100.0,
            short_window=5.0, long_window=10.0,
        )
        monitor = SLOMonitor(db, [spec])
        # Halfway through the deadline with only 10% done: burn 5.
        db.record("repair_progress", 50.0, 0.10)
        [status] = monitor.evaluate(50.0)
        assert status.burn_short == pytest.approx(5.0)
        assert status.firing
        # A finished repair stops burning regardless of elapsed time.
        db.record("repair_progress", 55.0, 1.0)
        db.record("repair_progress", 60.0, 1.0)
        [status] = monitor.evaluate(60.0)
        assert status.burn_short == pytest.approx(0.0)

    def test_durability_burn(self):
        db = TimeSeriesDB()
        spec = SLOSpec(
            name="dur", kind="durability", budget=2.0,
            short_window=5.0, long_window=10.0,
        )
        db.record("chunks_at_risk", 9.0, 8.0)
        monitor = SLOMonitor(db, [spec])
        [status] = monitor.evaluate(10.0)
        assert status.burn_short == pytest.approx(4.0)
        assert status.firing


class TestMonitorPlumbing:
    def test_on_tick_respects_interval_grid(self):
        db = TimeSeriesDB()
        monitor = SLOMonitor(db, [latency_spec()], interval=1.0)
        for t in (0.0, 0.25, 0.5, 1.0, 1.25, 2.0):
            monitor.on_tick(t)
        # Evaluations at 0.0, 1.0, 2.0 -> three slo_burn points per window.
        [short] = db.series("slo_burn", window="short")
        assert [t for t, _ in short.points] == [0.0, 1.0, 2.0]

    def test_transitions_emit_tracer_events_and_hooks(self):
        db = TimeSeriesDB()
        tracer = Tracer()
        monitor = SLOMonitor(db, [latency_spec()], tracer=tracer)
        hooked = []
        monitor.subscribe(hooked.append)
        feed_latency(db, [(t, 9.9) for t in (5.0, 6.0, 7.0, 8.0, 9.0)])
        monitor.evaluate(10.0)
        [alert] = hooked
        assert alert.firing and alert.name == "lat"
        [event] = [e for e in tracer.events if e.name == "slo.alert"]
        assert event.track == "slo"
        assert event.fields["tenant"] == "t0"

    def test_governor_backs_off_on_alert(self):
        governor = make_governor("adaptive")
        db = TimeSeriesDB()
        monitor = SLOMonitor(db, [latency_spec()])
        monitor.subscribe(governor.on_slo_alert)
        feed_latency(db, [(t, 9.9) for t in (5.0, 7.0, 9.0)])
        monitor.evaluate(10.0)
        assert governor.slo_alerts == 1
        assert governor.current_cap is not None


class TestScenarioDeterminism:
    """An end-to-end run must breach its SLO at a reproducible time."""

    NODE_COUNT = 10
    CODE = RSCode(6, 4)

    def run_once(self):
        network = StarNetwork.constant(
            [2e8] * self.NODE_COUNT, [2e8] * self.NODE_COUNT
        )
        stripes = place_stripes(
            12, self.CODE, self.NODE_COUNT, np.random.default_rng(7)
        )
        failed = stripes[0].placement[0]
        profile = LoadProfile(
            name="slo-scenario",
            arrival_rate=80.0,
            duration=30.0,
            read_fraction=0.9,
            request_size=1024 * 1024,
            zipf_s=0.9,
            tenants=("tenant-0", "tenant-1"),
        )
        requests = generate_requests(
            profile, stripes, self.NODE_COUNT, seed=11
        )
        tsdb = TimeSeriesDB()
        sampler = FlightRecorder(interval=0.25, tsdb=tsdb)
        tracer = Tracer()
        monitor = SLOMonitor(
            tsdb,
            [
                # Threshold far below what a degraded read costs under
                # repair interference, so the breach is guaranteed.
                SLOSpec(
                    name="lat-tenant-0", kind="latency", tenant="tenant-0",
                    threshold=0.004, budget=0.05,
                    short_window=1.0, long_window=2.0,
                ),
            ],
            tracer=tracer,
            interval=0.5,
        )
        sampler.add_listener(monitor.on_tick)
        foreground = ForegroundEngine(
            stripes, requests, PivotRepairPlanner(),
            failed_nodes={failed}, tsdb=tsdb,
        )
        repair_full_node(
            PivotRepairPlanner(), network, stripes, failed,
            concurrency=4,
            config=ExecutionConfig(chunk_size=4 * 1024 * 1024),
            foreground=foreground, sampler=sampler, tracer=tracer,
        )
        foreground.drain()
        return monitor, tracer

    def test_breach_fires_at_deterministic_simulated_time(self):
        monitor, tracer = self.run_once()
        fires = [alert for alert in monitor.alerts if alert.firing]
        assert fires, "the scenario is built to breach its latency SLO"
        first = fires[0]
        assert first.name == "lat-tenant-0"
        assert first.tenant == "tenant-0"
        # The alert also went through the tracer, at the same instant.
        events = [e for e in tracer.events if e.name == "slo.alert"]
        assert events and events[0].t == first.t
        # A second identical run fires at the byte-identical time.
        monitor2, _ = self.run_once()
        fires2 = [alert for alert in monitor2.alerts if alert.firing]
        assert [(a.name, a.t) for a in fires] == [
            (a.name, a.t) for a in fires2
        ]
